// Unit tests for the common utilities: contracts, RNG, statistics,
// serialization, flags and tables.
#include <gtest/gtest.h>

#include <sstream>

#include "common/assert.hpp"
#include "common/bytes.hpp"
#include "common/flags.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/time.hpp"

namespace mcmpi {
namespace {

// ------------------------------------------------------------- contracts

TEST(Assert, PassingConditionIsSilent) {
  EXPECT_NO_THROW(MC_ASSERT(1 + 1 == 2));
  EXPECT_NO_THROW(MC_EXPECTS(true));
}

TEST(Assert, FailureThrowsWithContext) {
  try {
    MC_ASSERT_MSG(false, "the answer was not 42");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("the answer was not 42"), std::string::npos);
    EXPECT_NE(what.find("common_test.cpp"), std::string::npos);
  }
}

// ------------------------------------------------------------------ time

TEST(Time, ConversionsRoundTrip) {
  EXPECT_EQ(microseconds(5).count(), 5000);
  EXPECT_EQ(milliseconds(2).count(), 2'000'000);
  EXPECT_EQ(seconds(1).count(), 1'000'000'000);
  EXPECT_DOUBLE_EQ(to_microseconds(microseconds(123)), 123.0);
  EXPECT_DOUBLE_EQ(to_milliseconds(milliseconds(7)), 7.0);
  EXPECT_EQ(microseconds_f(1.5).count(), 1500);
}

TEST(Time, TransmissionTimeAt100Mbps) {
  // 100 Mb/s = 80 ns per byte.
  EXPECT_EQ(transmission_time(1, 100'000'000).count(), 80);
  EXPECT_EQ(transmission_time(1000, 100'000'000).count(), 80'000);
  // Rounds up, never zero for a nonzero payload.
  EXPECT_GT(transmission_time(1, 1'000'000'000'000).count(), 0);
}

// ------------------------------------------------------------------- rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowIsAlwaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(11);
  std::array<int, 5> histogram{};
  for (int i = 0; i < 5000; ++i) {
    ++histogram[rng.below(5)];
  }
  for (int count : histogram) {
    EXPECT_GT(count, 800);  // ~1000 expected per bucket
  }
}

TEST(Rng, UniformStaysInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(99);
  Rng child1 = parent.fork(1);
  Rng child2 = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child1() == child2()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

// ----------------------------------------------------------------- stats

TEST(Sample, MedianOfOddCount) {
  Sample s;
  for (double v : {5.0, 1.0, 3.0}) {
    s.add(v);
  }
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
}

TEST(Sample, MedianInterpolatesEvenCount) {
  Sample s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) {
    s.add(v);
  }
  EXPECT_DOUBLE_EQ(s.median(), 2.5);
}

TEST(Sample, PercentileEndpoints) {
  Sample s;
  for (int i = 1; i <= 100; ++i) {
    s.add(i);
  }
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
}

TEST(Sample, SpreadAndStddev) {
  Sample s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(v);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.spread(), 7.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
}

TEST(Sample, SinglePointEdgeCases) {
  Sample s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.median(), 42.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.spread(), 0.0);
}

TEST(Accumulator, TracksMinMaxMean) {
  Accumulator acc;
  for (double v : {3.0, -1.0, 10.0}) {
    acc.add(v);
  }
  EXPECT_EQ(acc.count(), 3u);
  EXPECT_DOUBLE_EQ(acc.min(), -1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 10.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 4.0);
}

// ----------------------------------------------------------------- bytes

TEST(Bytes, WriterReaderRoundTrip) {
  Buffer buf;
  ByteWriter w(buf);
  w.u8(0xAB);
  w.u16(0xCDEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i32(-42);
  w.i64(-1'000'000'007);
  ByteReader r(buf);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xCDEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -1'000'000'007);
  EXPECT_TRUE(r.done());
}

TEST(Bytes, EncodingIsLittleEndianOnTheWire) {
  // The encoding contract, pinned to an exact byte sequence: multi-byte
  // values are little-endian regardless of host byte order.
  Buffer buf;
  ByteWriter w(buf);
  w.u16(0x1122);
  w.u32(0xAABBCCDD);
  w.u64(0x0102030405060708ULL);
  w.i32(-2);  // 0xFFFFFFFE
  const Buffer expected{
      0x22, 0x11,                                      // u16
      0xDD, 0xCC, 0xBB, 0xAA,                          // u32
      0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01,  // u64
      0xFE, 0xFF, 0xFF, 0xFF,                          // i32
  };
  EXPECT_EQ(buf, expected);
  ByteReader r(buf);
  EXPECT_EQ(r.u16(), 0x1122);
  EXPECT_EQ(r.u32(), 0xAABBCCDDu);
  EXPECT_EQ(r.u64(), 0x0102030405060708ULL);
  EXPECT_EQ(r.i32(), -2);
  EXPECT_TRUE(r.done());
}

TEST(Bytes, ReaderOverrunThrows) {
  Buffer buf{1, 2, 3};
  ByteReader r(buf);
  EXPECT_THROW((void)r.u32(), ContractViolation);
}

// ------------------------------------------------------------ PayloadRef

TEST(PayloadRef, SlicesShareOneAllocation) {
  const PayloadCounters before = payload_counters();
  PayloadRef whole(pattern_payload(3, 1000));
  PayloadRef a = whole.slice(0, 400);
  PayloadRef b = whole.slice(400);
  PayloadRef copy = b;  // ref copy, not byte copy
  const PayloadCounters delta = payload_counters().since(before);
  EXPECT_EQ(delta.buffer_allocs, 1u);
  EXPECT_EQ(delta.byte_copies, 0u);
  EXPECT_EQ(a.size(), 400u);
  EXPECT_EQ(b.size(), 600u);
  EXPECT_TRUE(a.same_buffer(b));
  EXPECT_TRUE(copy.same_buffer(whole));
  // The bytes are the original ones, by address.
  EXPECT_EQ(a.data(), whole.data());
  EXPECT_EQ(b.data(), whole.data() + 400);
}

TEST(PayloadRef, JoinRebuildsContiguousViewsWithoutCopy) {
  PayloadRef whole(pattern_payload(9, 500));
  PayloadRef head = whole.slice(0, 200);
  PayloadRef tail = whole.slice(200);
  ASSERT_TRUE(head.directly_precedes(tail));
  EXPECT_FALSE(tail.directly_precedes(head));
  const PayloadRef joined = head.joined_with(tail);
  EXPECT_EQ(joined.size(), 500u);
  EXPECT_EQ(joined.data(), whole.data());
  EXPECT_TRUE(check_pattern(9, joined));
}

TEST(PayloadRef, ToBufferCopiesOutExactBytes) {
  PayloadRef whole(pattern_payload(4, 256));
  const Buffer out = whole.slice(16, 64).to_buffer();
  EXPECT_EQ(out, Buffer(whole.view().begin() + 16, whole.view().begin() + 80));
}

TEST(PayloadRef, KeepsBackingBufferAliveAfterOwnerDies) {
  PayloadRef tail;
  {
    PayloadRef whole(pattern_payload(7, 128));
    tail = whole.slice(64);
  }  // `whole` gone; the slice must still own the bytes
  EXPECT_EQ(tail.size(), 64u);
  const Buffer expected = pattern_payload(7, 128);
  EXPECT_TRUE(std::equal(tail.view().begin(), tail.view().end(),
                         expected.begin() + 64));
}

TEST(PayloadRef, SliceOutOfBoundsThrows) {
  PayloadRef whole(Buffer(10, 0));
  EXPECT_THROW((void)whole.slice(4, 7), ContractViolation);
  EXPECT_THROW((void)whole.slice(11), ContractViolation);
  EXPECT_NO_THROW((void)whole.slice(10));  // empty tail is fine
}

TEST(Bytes, PatternPayloadIsDeterministicAndSeedSensitive) {
  const Buffer a = pattern_payload(5, 100);
  const Buffer b = pattern_payload(5, 100);
  const Buffer c = pattern_payload(6, 100);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_TRUE(check_pattern(5, a));
  EXPECT_FALSE(check_pattern(6, a));
}

TEST(Bytes, PatternPayloadZeroLength) {
  EXPECT_TRUE(pattern_payload(1, 0).empty());
  EXPECT_TRUE(check_pattern(1, Buffer{}));
}

TEST(Bytes, HexDumpTruncates) {
  Buffer buf(100, 0xAA);
  const std::string dump = hex_dump(buf, 4);
  EXPECT_EQ(dump, "aa aa aa aa ...");
}

// ----------------------------------------------------------------- flags

TEST(Flags, ParsesTypedValues) {
  const char* argv[] = {"prog", "--reps=30", "--csv", "--scale=1.5",
                        "--name=fig7"};
  Flags flags(5, argv);
  EXPECT_EQ(flags.get_int("reps", 10), 30);
  EXPECT_TRUE(flags.get_bool("csv", false));
  EXPECT_DOUBLE_EQ(flags.get_double("scale", 1.0), 1.5);
  EXPECT_EQ(flags.get_string("name", ""), "fig7");
  EXPECT_NO_THROW(flags.check_unknown());
}

TEST(Flags, DefaultsApplyWhenAbsent) {
  const char* argv[] = {"prog"};
  Flags flags(1, argv);
  EXPECT_EQ(flags.get_int("reps", 25), 25);
  EXPECT_FALSE(flags.get_bool("csv", false));
}

TEST(Flags, UnknownFlagDetected) {
  const char* argv[] = {"prog", "--oops=1"};
  Flags flags(2, argv);
  (void)flags.get_int("reps", 25);
  EXPECT_THROW(flags.check_unknown(), std::invalid_argument);
}

TEST(Flags, MalformedValueThrows) {
  const char* argv[] = {"prog", "--reps=abc"};
  Flags flags(2, argv);
  EXPECT_THROW((void)flags.get_int("reps", 1), std::invalid_argument);
}

TEST(Flags, HelpRequested) {
  const char* argv[] = {"prog", "--help"};
  Flags flags(2, argv);
  EXPECT_TRUE(flags.help_requested());
  (void)flags.get_int("reps", 25, "repetitions per point");
  EXPECT_NE(flags.usage("demo").find("repetitions per point"),
            std::string::npos);
}

// ----------------------------------------------------------------- table

TEST(Table, AsciiAlignsColumns) {
  Table t({"size", "latency"});
  t.add_row({"100", "12.5"});
  t.add_row({"5000", "1432.1"});
  std::ostringstream os;
  t.print_ascii(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("size"), std::string::npos);
  EXPECT_NE(out.find("1432.1"), std::string::npos);
}

TEST(Table, CsvIsMachineReadable) {
  Table t({"a", "b"});
  t.add_row_values({1.0, 2.25});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1.0,2.2\n");
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

}  // namespace
}  // namespace mcmpi
