// Fault-injection subsystem tests: MCMPI_FAULTS parsing, the determinism
// contract (one drop schedule per seed, bit-identical across shard counts,
// shard drivers and execution backends), recovery-protocol behavior under
// loss/duplication/reorder (nack-mcast, ack-mcast, segmented), the
// loss-tolerant conformance sweep, background cross traffic and per-host
// speed skew.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "coll/ack_mcast.hpp"
#include "coll/facade.hpp"
#include "coll/nack_mcast.hpp"
#include "coll/registry.hpp"
#include "coll/segmented.hpp"
#include "common/bytes.hpp"
#include "net/fault.hpp"

namespace mcmpi {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::NetworkType;
using net::fault::FaultConfig;
using net::fault::FaultProfile;

// ------------------------------------------------------------- env syntax

TEST(FaultConfigParse, ParsesEveryKey) {
  const FaultConfig c = FaultConfig::parse(
      "loss=0.01,burst=0.02:0.25:0.5,dup=0.001,reorder=0.01,jitter_us=80,"
      "trunk_loss=0.02,seed=7,skew=0.1,xflows=4,xframes=100,xbytes=256,"
      "xinterval_us=300");
  EXPECT_DOUBLE_EQ(c.link.loss, 0.01);
  EXPECT_DOUBLE_EQ(c.link.ge_good_to_bad, 0.02);
  EXPECT_DOUBLE_EQ(c.link.ge_bad_to_good, 0.25);
  EXPECT_DOUBLE_EQ(c.link.ge_loss_bad, 0.5);
  EXPECT_DOUBLE_EQ(c.link.duplicate, 0.001);
  EXPECT_DOUBLE_EQ(c.link.reorder, 0.01);
  EXPECT_EQ(c.link.reorder_jitter, microseconds(80));
  EXPECT_DOUBLE_EQ(c.trunk.loss, 0.02);
  EXPECT_EQ(c.seed, 7u);
  EXPECT_DOUBLE_EQ(c.host_speed_skew, 0.1);
  EXPECT_EQ(c.cross_flows, 4);
  EXPECT_EQ(c.cross_frames, 100);
  EXPECT_EQ(c.cross_bytes, 256u);
  EXPECT_EQ(c.cross_interval, microseconds(300));
  EXPECT_TRUE(c.enabled());
  EXPECT_TRUE(c.lossy());
}

TEST(FaultConfigParse, RejectsMalformedSpecs) {
  EXPECT_THROW((void)FaultConfig::parse("bogus=1"), std::invalid_argument);
  EXPECT_THROW((void)FaultConfig::parse("loss=abc"), std::invalid_argument);
  EXPECT_THROW((void)FaultConfig::parse("loss"), std::invalid_argument);
  EXPECT_THROW((void)FaultConfig::parse("burst=0.1:0.2"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultConfig::parse("loss=1.5"), std::invalid_argument);
}

TEST(FaultConfigParse, ErrorsNameThePairAndOffendingToken) {
  // MCMPI_FAULTS typos must be findable from the message alone: every
  // parse error names the pair (1-based position + text) and the token.
  const auto message = [](const std::string& spec) {
    try {
      (void)FaultConfig::parse(spec);
    } catch (const std::invalid_argument& e) {
      return std::string(e.what());
    }
    return std::string();
  };
  const std::string bad_value = message("loss=0.1,dup=abc");
  EXPECT_NE(bad_value.find("pair 2 ('dup=abc')"), std::string::npos)
      << bad_value;
  EXPECT_NE(bad_value.find("offending token 'abc'"), std::string::npos)
      << bad_value;
  const std::string bad_key = message("loss=0.1,bogus=1");
  EXPECT_NE(bad_key.find("pair 2 ('bogus=1')"), std::string::npos) << bad_key;
  EXPECT_NE(bad_key.find("unknown key 'bogus'"), std::string::npos)
      << bad_key;
  const std::string bad_burst = message("burst=0.1:0.2");
  EXPECT_NE(bad_burst.find("pair 1 ('burst=0.1:0.2')"), std::string::npos)
      << bad_burst;
  EXPECT_NE(bad_burst.find("offending token '0.1:0.2'"), std::string::npos)
      << bad_burst;
  const std::string no_value = message("loss");
  EXPECT_NE(no_value.find("pair 1 ('loss')"), std::string::npos) << no_value;
  EXPECT_NE(no_value.find("expected key=value"), std::string::npos)
      << no_value;
}

TEST(FaultConfigParse, DisabledByDefaultAndDupAloneIsNotLossy) {
  EXPECT_FALSE(FaultConfig{}.enabled());
  const FaultConfig dup = FaultConfig::parse("dup=0.1");
  EXPECT_TRUE(dup.enabled());
  EXPECT_FALSE(dup.lossy());  // duplication alone cannot lose payload
}

// ------------------------------------------------- determinism contract

struct FaultyRun {
  std::vector<Buffer> buffers;  // last bcast result per rank
  std::int64_t end_ns = 0;
  sim::SchedCounters sched;
};

/// An adversarial multi-segment workload: 8 ranks over 4 switched
/// segments, link loss + duplication + reorder plus trunk loss, three
/// broadcasts (two NACK-recovered multicasts, one reliable-p2p mpich).
FaultyRun run_faulty(unsigned shards, sim::ShardDriver driver,
                     sim::ExecutionBackend backend) {
  ClusterConfig config;
  config.num_procs = 8;
  config.num_segments = 4;
  config.network = NetworkType::kSwitch;
  config.seed = 77;
  config.sim_shards = shards;
  config.shard_driver = driver;
  config.sim_backend = backend;
  config.faults.link.loss = 0.02;
  config.faults.link.duplicate = 0.01;
  config.faults.link.reorder = 0.02;
  config.faults.trunk.loss = 0.01;
  Cluster cluster(config);

  FaultyRun run;
  run.buffers.resize(8);
  cluster.world().run([&](mpi::Proc& p) {
    for (int rep = 0; rep < 2; ++rep) {
      Buffer data;
      if (p.rank() == 0) {
        data = pattern_payload(5 + rep, 3000);
      }
      p.comm_world().coll().bcast(data, 0, "nack-mcast");
      run.buffers[static_cast<std::size_t>(p.rank())] = std::move(data);
    }
    Buffer data;
    if (p.rank() == 1) {
      data = pattern_payload(9, 2000);
    }
    p.comm_world().coll().bcast(data, 1, "mpich");
  });
  run.end_ns = cluster.simulator().now().count();
  run.sched = cluster.simulator().sched_counters();
  return run;
}

void expect_same_schedule(const FaultyRun& a, const FaultyRun& b,
                          const std::string& what) {
  EXPECT_EQ(a.end_ns, b.end_ns) << what;
  EXPECT_EQ(a.sched.frames_dropped, b.sched.frames_dropped) << what;
  EXPECT_EQ(a.sched.frames_duplicated, b.sched.frames_duplicated) << what;
  EXPECT_EQ(a.sched.frames_reordered, b.sched.frames_reordered) << what;
  EXPECT_EQ(a.sched.nacks_sent, b.sched.nacks_sent) << what;
  EXPECT_EQ(a.sched.nacks_suppressed, b.sched.nacks_suppressed) << what;
  EXPECT_EQ(a.sched.retransmits, b.sched.retransmits) << what;
  ASSERT_EQ(a.buffers.size(), b.buffers.size());
  for (std::size_t r = 0; r < a.buffers.size(); ++r) {
    EXPECT_EQ(a.buffers[r], b.buffers[r]) << what << ", rank " << r;
  }
}

TEST(FaultDeterminism, ScheduleIsIdenticalAcrossShardCountsAndDrivers) {
  const auto backend = sim::default_execution_backend();
  const FaultyRun reference =
      run_faulty(1, sim::ShardDriver::kSerial, backend);
  ASSERT_GT(reference.sched.frames_dropped, 0u);  // the workload is faulty
  for (unsigned shards : {1u, 2u, 4u}) {
    for (sim::ShardDriver driver :
         {sim::ShardDriver::kSerial, sim::ShardDriver::kParallel}) {
      if (shards == 1 && driver == sim::ShardDriver::kSerial) {
        continue;  // that is the reference itself
      }
      const FaultyRun run = run_faulty(shards, driver, backend);
      expect_same_schedule(
          reference, run,
          std::to_string(shards) + " shard(s), " +
              (driver == sim::ShardDriver::kSerial ? "serial" : "parallel") +
              " driver");
    }
  }
}

TEST(FaultDeterminism, ScheduleIsIdenticalAcrossExecutionBackends) {
  const FaultyRun fiber =
      run_faulty(2, sim::ShardDriver::kSerial, sim::ExecutionBackend::kFiber);
  const FaultyRun thread =
      run_faulty(2, sim::ShardDriver::kSerial, sim::ExecutionBackend::kThread);
  expect_same_schedule(fiber, thread, "fiber vs thread backend");
}

// ------------------------------------------------ recovery under faults

ClusterConfig faulty_config(int procs, NetworkType net,
                            const FaultProfile& link, std::uint64_t seed = 11) {
  ClusterConfig config;
  config.num_procs = procs;
  config.network = net;
  config.seed = seed;
  config.faults.link = link;
  return config;
}

/// Runs one explicit-algorithm broadcast and checks every rank got the
/// root's exact bytes.
void check_bcast(Cluster& cluster, const std::string& algo,
                 std::size_t payload) {
  const int procs = cluster.num_procs();
  std::vector<int> ok(static_cast<std::size_t>(procs), 0);
  bool applicable = true;
  cluster.world().run([&](mpi::Proc& p) {
    // Registry applicability: the conformance sweeps cross every
    // loss-tolerant algorithm with every topology, and the hierarchical
    // entries reject single-segment clusters — skip those combinations.
    const coll::CollAlgorithm& a =
        coll::Registry::instance().get(coll::CollOp::kBcast, algo);
    if (a.applicable && !a.applicable(p.comm_world(), payload)) {
      applicable = false;  // same verdict on every rank
      return;
    }
    Buffer data;
    if (p.rank() == 0) {
      data = pattern_payload(99, payload);
    }
    p.comm_world().coll().bcast(data, 0, algo);
    ok[static_cast<std::size_t>(p.rank())] =
        data.size() == payload && check_pattern(99, data);
  });
  if (!applicable) {
    return;
  }
  for (int r = 0; r < procs; ++r) {
    EXPECT_TRUE(ok[static_cast<std::size_t>(r)]) << algo << ", rank " << r;
  }
}

TEST(NackMcast, RecoversAtOneAndFivePercentLoss) {
  for (NetworkType net : {NetworkType::kHub, NetworkType::kSwitch}) {
    for (double loss : {0.01, 0.05}) {
      Cluster cluster(faulty_config(9, net, FaultProfile{.loss = loss}));
      check_bcast(cluster, "nack-mcast", 4000);
      check_bcast(cluster, "nack-mcast", 4000);  // sequences continue
      EXPECT_GT(cluster.simulator().sched_counters().frames_dropped, 0u)
          << cluster::to_string(net) << " loss " << loss;
    }
  }
}

TEST(NackMcast, GapsDriveNacksAndRetransmissions) {
  Cluster cluster(
      faulty_config(9, NetworkType::kSwitch, FaultProfile{.loss = 0.05}));
  for (int i = 0; i < 4; ++i) {
    check_bcast(cluster, "nack-mcast", 4000);
  }
  const sim::SchedCounters sched = cluster.simulator().sched_counters();
  EXPECT_GT(sched.nacks_sent, 0u);
  EXPECT_GT(sched.retransmits, 0u);
}

TEST(NackMcast, TotalLossIsAHardErrorNotAHang) {
  Cluster cluster(
      faulty_config(4, NetworkType::kSwitch, FaultProfile{.loss = 1.0}));
  EXPECT_THROW(
      cluster.world().run([&](mpi::Proc& p) {
        coll::NackMcastParams params;
        params.nack_timeout = milliseconds(1);
        params.max_retries = 3;
        coll::set_nack_mcast_params(p, p.comm_world(), params);
        Buffer data;
        if (p.rank() == 0) {
          data = pattern_payload(1, 500);
        }
        p.comm_world().coll().bcast(data, 0, "nack-mcast");
      }),
      std::runtime_error);
}

TEST(NackMcast, HistoryBoundPlumbsFromClusterConfigAndEnvironment) {
  // Explicit ClusterConfig bound wins; the first broadcast adopts it into
  // the communicator's protocol params.
  {
    ClusterConfig config = faulty_config(3, NetworkType::kSwitch, {});
    config.nack_history_frames = 7;
    Cluster cluster(config);
    cluster.world().run([](mpi::Proc& p) {
      EXPECT_EQ(p.nack_history_frames(), 7u);
      Buffer data;
      if (p.rank() == 0) {
        data = pattern_payload(2, 300);
      }
      p.comm_world().coll().bcast(data, 0, "nack-mcast");
      EXPECT_EQ(coll::nack_mcast_params(p, p.comm_world()).history_frames,
                7u);
    });
  }
  // Env variable fills in when the config leaves the bound at 0...
  {
    ::setenv("MCMPI_NACK_HISTORY", "5", 1);
    Cluster cluster(faulty_config(2, NetworkType::kSwitch, {}));
    ::unsetenv("MCMPI_NACK_HISTORY");
    cluster.world().run(
        [](mpi::Proc& p) { EXPECT_EQ(p.nack_history_frames(), 5u); });
  }
  // ...and an explicit config bound beats the environment.
  {
    ::setenv("MCMPI_NACK_HISTORY", "5", 1);
    ClusterConfig config = faulty_config(2, NetworkType::kSwitch, {});
    config.nack_history_frames = 9;
    Cluster cluster(config);
    ::unsetenv("MCMPI_NACK_HISTORY");
    cluster.world().run(
        [](mpi::Proc& p) { EXPECT_EQ(p.nack_history_frames(), 9u); });
  }
}

TEST(NackMcast, RejectsMalformedHistoryEnvironment) {
  const ClusterConfig config = faulty_config(2, NetworkType::kSwitch, {});
  for (const char* bad : {"0", "abc", "-3"}) {
    ::setenv("MCMPI_NACK_HISTORY", bad, 1);
    EXPECT_THROW(Cluster{config}, std::invalid_argument) << bad;
    ::unsetenv("MCMPI_NACK_HISTORY");
  }
}

TEST(NackMcast, BoundedHistoryOverflowIsAHardError) {
  // A fire-and-forget root racing three broadcasts past a one-frame
  // retransmission history: a receiver that lost frame 0 NACKs into a
  // history that has already evicted it, exhausts its retries, and must
  // get the documented hard error — never a silent hang.  The same racing
  // workload under an ample history recovers completely.
  const auto run_once = [](std::uint64_t seed, std::size_t history,
                           int max_retries) {
    ClusterConfig config = faulty_config(
        5, NetworkType::kSwitch, FaultProfile{.loss = 0.4}, seed);
    config.nack_history_frames = history;
    Cluster cluster(config);
    cluster.world().run([&](mpi::Proc& p) {
      coll::NackMcastParams params;
      params.history_frames = p.nack_history_frames();  // the plumbed bound
      params.nack_timeout = milliseconds(1);
      params.timeout_cap = milliseconds(8);
      params.max_retries = max_retries;
      coll::set_nack_mcast_params(p, p.comm_world(), params);
      for (int i = 0; i < 3; ++i) {
        Buffer data;
        if (p.rank() == 0) {
          data = pattern_payload(40 + i, 2000);
        }
        p.comm_world().coll().bcast(data, 0, "nack-mcast");
        EXPECT_TRUE(check_pattern(40 + i, data)) << "rank " << p.rank();
      }
    });
  };
  bool overflowed = false;
  std::uint64_t bad_seed = 0;
  for (std::uint64_t seed = 1; seed <= 24 && !overflowed; ++seed) {
    try {
      run_once(seed, 1, 6);
    } catch (const std::runtime_error&) {
      overflowed = true;
      bad_seed = seed;
    }
  }
  EXPECT_TRUE(overflowed);  // 40% loss reliably outruns a 1-frame history
  run_once(bad_seed, 64, 50);  // ample history: same races, full recovery
}

TEST(NackMcast, RejectsOutOfRangeParams) {
  Cluster cluster(faulty_config(2, NetworkType::kSwitch, FaultProfile{}));
  cluster.world().run([&](mpi::Proc& p) {
    coll::NackMcastParams bad;
    bad.nack_timeout = kTimeZero;
    EXPECT_THROW(coll::set_nack_mcast_params(p, p.comm_world(), bad),
                 std::invalid_argument);
    bad = coll::NackMcastParams{};
    bad.backoff = 0.5;
    EXPECT_THROW(coll::set_nack_mcast_params(p, p.comm_world(), bad),
                 std::invalid_argument);
    bad = coll::NackMcastParams{};
    bad.max_retries = -1;
    EXPECT_THROW(coll::set_nack_mcast_params(p, p.comm_world(), bad),
                 std::invalid_argument);
  });
}

TEST(AckMcast, BackoffRecoversAtFivePercentLoss) {
  Cluster cluster(
      faulty_config(9, NetworkType::kSwitch, FaultProfile{.loss = 0.05}));
  std::uint64_t root_retransmissions = 0;
  cluster.world().run([&](mpi::Proc& p) {
    coll::AckMcastParams params;
    params.retransmit_timeout = milliseconds(2);
    params.backoff = 2.0;
    params.timeout_cap = milliseconds(80);
    params.max_retries = 100;
    coll::set_ack_mcast_params(p, p.comm_world(), params);
    for (int i = 0; i < 4; ++i) {
      Buffer data;
      if (p.rank() == 0) {
        data = pattern_payload(i, 4000);
      }
      p.comm_world().coll().bcast(data, 0, "ack-mcast");
      EXPECT_TRUE(check_pattern(i, data)) << "rank " << p.rank();
    }
    if (p.rank() == 0) {
      root_retransmissions =
          coll::ack_mcast_stats(p, p.comm_world()).retransmissions;
    }
  });
  EXPECT_GT(root_retransmissions, 0u);
  EXPECT_GT(cluster.simulator().sched_counters().retransmits, 0u);
}

TEST(AckMcast, RetryCapTurnsTotalLossIntoAnError) {
  Cluster cluster(
      faulty_config(4, NetworkType::kSwitch, FaultProfile{.loss = 1.0}));
  EXPECT_THROW(
      cluster.world().run([&](mpi::Proc& p) {
        Buffer data;
        if (p.rank() == 0) {
          data = pattern_payload(1, 500);
        }
        coll::AckMcastParams params;
        params.retransmit_timeout = milliseconds(1);
        params.max_retries = 3;
        coll::bcast_ack_mcast(p, p.comm_world(), data, 0, params);
      }),
      std::runtime_error);
}

TEST(AckMcast, RejectsOutOfRangeParams) {
  Cluster cluster(faulty_config(2, NetworkType::kSwitch, FaultProfile{}));
  cluster.world().run([&](mpi::Proc& p) {
    coll::AckMcastParams bad;
    bad.retransmit_timeout = kTimeZero;
    EXPECT_THROW(coll::set_ack_mcast_params(p, p.comm_world(), bad),
                 std::invalid_argument);
    bad = coll::AckMcastParams{};
    bad.backoff = 0.9;
    EXPECT_THROW(coll::set_ack_mcast_params(p, p.comm_world(), bad),
                 std::invalid_argument);
    bad = coll::AckMcastParams{};
    bad.timeout_cap = microseconds(1);  // below the timeout
    EXPECT_THROW(coll::set_ack_mcast_params(p, p.comm_world(), bad),
                 std::invalid_argument);
  });
}

TEST(Segmented, PerChunkRecoveryUnderLoss) {
  Cluster cluster(
      faulty_config(9, NetworkType::kSwitch, FaultProfile{.loss = 0.02}));
  const std::size_t payload = 48 * 1024;
  std::vector<int> ok(9, 0);
  cluster.world().run([&](mpi::Proc& p) {
    coll::SegmentedConfig config;
    config.chunk_bytes = 4096;
    config.window = 4;
    config.retransmit_timeout = milliseconds(2);
    config.retransmit_backoff = 2.0;
    config.retransmit_timeout_cap = milliseconds(400);
    config.max_retries = 50;
    coll::set_segmented_config(p, p.comm_world(), config);
    Buffer data;
    if (p.rank() == 0) {
      data = pattern_payload(7, payload);
    }
    p.comm_world().coll().bcast(data, 0, "mcast-segmented");
    ok[static_cast<std::size_t>(p.rank())] =
        data.size() == payload && check_pattern(7, data);
  });
  for (int r = 0; r < 9; ++r) {
    EXPECT_TRUE(ok[static_cast<std::size_t>(r)]) << "rank " << r;
  }
  const sim::SchedCounters sched = cluster.simulator().sched_counters();
  EXPECT_GT(sched.frames_dropped, 0u);
  EXPECT_GT(sched.chunk_retried, 0u);
  EXPECT_GT(sched.retransmits, 0u);
}

TEST(FaultInjection, DuplicationIsTolerated) {
  Cluster cluster(faulty_config(9, NetworkType::kSwitch,
                                FaultProfile{.duplicate = 0.3}));
  check_bcast(cluster, "nack-mcast", 4000);
  check_bcast(cluster, "sequencer", 4000);
  EXPECT_GT(cluster.simulator().sched_counters().frames_duplicated, 0u);
}

TEST(FaultInjection, ReorderIsTolerated) {
  FaultProfile profile;
  profile.reorder = 0.3;
  profile.reorder_jitter = microseconds(100);
  Cluster cluster(faulty_config(9, NetworkType::kSwitch, profile));
  check_bcast(cluster, "nack-mcast", 4000);
  check_bcast(cluster, "mpich", 4000);
  EXPECT_GT(cluster.simulator().sched_counters().frames_reordered, 0u);
}

// -------------------------------------------------- conformance sweep

std::vector<std::string> loss_tolerant_bcasts() {
  std::vector<std::string> names;
  for (const coll::CollAlgorithm& algo : coll::Registry::instance().entries()) {
    if (algo.op == coll::CollOp::kBcast && algo.loss_tolerant) {
      names.push_back(algo.name);
    }
  }
  return names;
}

TEST(FaultConformance, EveryLossTolerantBcastDeliversUnderLoss) {
  const std::vector<std::string> algos = loss_tolerant_bcasts();
  ASSERT_GE(algos.size(), 5u);  // mpich, ack/nack-mcast, sequencer, ...
  struct Topo {
    NetworkType net;
    int segments;
  };
  const std::vector<Topo> topologies = {{NetworkType::kHub, 1},
                                        {NetworkType::kSwitch, 1},
                                        {NetworkType::kSwitch, 2}};
  for (const std::string& algo : algos) {
    for (const Topo& topo : topologies) {
      for (double loss : {0.01, 0.05}) {
        ClusterConfig config =
            faulty_config(6, topo.net, FaultProfile{.loss = loss});
        config.num_segments = topo.segments;
        if (topo.segments > 1) {
          config.faults.trunk.loss = loss;
        }
        Cluster cluster(config);
        check_bcast(cluster, algo, 2500);
      }
    }
  }
}

TEST(FaultConformance, AutoSelectionAvoidsLossIntolerantAlgorithms) {
  // On a lossy wire kAuto must not pick a recovery-free multicast (which
  // would deliver short or hang): the tuned pick completes and delivers.
  Cluster cluster(
      faulty_config(9, NetworkType::kSwitch, FaultProfile{.loss = 0.05}));
  std::vector<int> ok(9, 0);
  cluster.world().run([&](mpi::Proc& p) {
    EXPECT_TRUE(p.network_lossy());
    for (int i = 0; i < 3; ++i) {
      // kAuto requires equal-sized buffers on every rank (the matching
      // count rule) so all ranks resolve the same algorithm.
      Buffer data(2000);
      if (p.rank() == 0) {
        data = pattern_payload(i, 2000);
      }
      p.comm_world().coll().bcast(data, 0);  // kAuto
      ok[static_cast<std::size_t>(p.rank())] =
          data.size() == 2000u && check_pattern(i, data);
    }
  });
  for (int r = 0; r < 9; ++r) {
    EXPECT_TRUE(ok[static_cast<std::size_t>(r)]) << "rank " << r;
  }
}

// --------------------------------------- environment knobs and ambiance

TEST(FaultInjection, CrossTrafficLoadsTheWire) {
  ClusterConfig config = faulty_config(4, NetworkType::kSwitch, {});
  config.faults.cross_flows = 4;
  config.faults.cross_frames = 30;
  config.faults.cross_bytes = 512;
  config.faults.cross_interval = microseconds(200);
  Cluster cluster(config);
  cluster.world().run(
      [](mpi::Proc& p) { p.comm_world().coll().barrier("mpich"); });
  std::uint64_t stray = 0;
  for (int r = 0; r < 4; ++r) {
    stray += cluster.udp(r).stats().no_socket_drops;
  }
  // The flows aim at a port nobody listens on; their datagrams must have
  // arrived somewhere and been dropped there.
  EXPECT_GT(stray, 0u);
  EXPECT_EQ(cluster.fault_plane(), nullptr);  // pure load, no link faults
}

TEST(FaultInjection, SpeedSkewIsDeterministicPerSeed) {
  auto run_once = [](double skew) {
    ClusterConfig config = faulty_config(6, NetworkType::kSwitch, {});
    config.faults.host_speed_skew = skew;
    Cluster cluster(config);
    cluster.world().run(
        [](mpi::Proc& p) { p.comm_world().coll().barrier("mpich"); });
    return cluster.simulator().now().count();
  };
  const auto skewed = run_once(0.2);
  EXPECT_EQ(skewed, run_once(0.2));   // same seed, same heterogeneity
  EXPECT_NE(skewed, run_once(0.0));   // skew actually changes timing
}

TEST(FaultEnv, ClusterPicksUpEnvironmentProfile) {
  if (std::getenv("MCMPI_FAULTS") == nullptr) {
    GTEST_SKIP() << "MCMPI_FAULTS not set (run via the fault_env_lane "
                    "CTest entry)";
  }
  // Plain config, no explicit faults: the cluster must adopt the env
  // profile, flag the network lossy, and recovery must still deliver.
  ClusterConfig config;
  config.num_procs = 6;
  config.network = NetworkType::kSwitch;
  config.seed = 3;
  Cluster cluster(config);
  ASSERT_NE(cluster.fault_plane(), nullptr);
  // Enough frames on the wire that the lane's 2% loss profile is
  // guaranteed to fire for this (deterministic) seed.
  for (int i = 0; i < 4; ++i) {
    check_bcast(cluster, "nack-mcast", 16000);
  }
  EXPECT_GT(cluster.simulator().sched_counters().frames_dropped, 0u);
}

}  // namespace
}  // namespace mcmpi
