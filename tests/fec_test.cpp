// FEC-coded reliable multicast tests: GF(256) algebra (inverses, the
// all-ones XOR row, any-k-subset invertibility of the stacked generator),
// randomized encode/erase/decode round-trips with ragged tails, config
// validation, the fec-mcast conformance sweep against mpich across ranks x
// topologies x loss modes, the adaptive parity ratchet, the NACK fallback
// and its hard-error cap, lossy-gated auto-selection, and the segmented
// pipeline's FEC recovery mode (clean-wire parity accounting and jumbo
// reconstruction under loss).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "coll/facade.hpp"
#include "common/assert.hpp"
#include "coll/fec.hpp"
#include "coll/gf256.hpp"
#include "coll/registry.hpp"
#include "coll/segmented.hpp"
#include "common/bytes.hpp"
#include "net/fault.hpp"

namespace mcmpi {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::NetworkType;
using net::fault::FaultProfile;
namespace gf256 = coll::gf256;

// ----------------------------------------------------------- GF(256)

TEST(Gf256Algebra, MulHasIdentitiesAndCommutes) {
  for (int a = 0; a < 256; ++a) {
    const auto ua = static_cast<std::uint8_t>(a);
    EXPECT_EQ(gf256::mul(ua, 0), 0);
    EXPECT_EQ(gf256::mul(0, ua), 0);
    EXPECT_EQ(gf256::mul(ua, 1), ua);
    EXPECT_EQ(gf256::mul(1, ua), ua);
    for (int b = 0; b < 256; ++b) {
      const auto ub = static_cast<std::uint8_t>(b);
      EXPECT_EQ(gf256::mul(ua, ub), gf256::mul(ub, ua));
    }
  }
}

TEST(Gf256Algebra, MulDistributesOverXor) {
  // Exhaustive over (a, b) for a sample of multipliers c — the full triple
  // product space is 16M checks for no extra coverage of the table.
  for (const int c : {1, 2, 3, 29, 91, 142, 255}) {
    const auto uc = static_cast<std::uint8_t>(c);
    for (int a = 0; a < 256; ++a) {
      for (int b = 0; b < 256; ++b) {
        const auto ua = static_cast<std::uint8_t>(a);
        const auto ub = static_cast<std::uint8_t>(b);
        EXPECT_EQ(gf256::mul(static_cast<std::uint8_t>(ua ^ ub), uc),
                  gf256::mul(ua, uc) ^ gf256::mul(ub, uc));
      }
    }
  }
}

TEST(Gf256Algebra, EveryNonzeroElementHasAnInverse) {
  for (int a = 1; a < 256; ++a) {
    const auto ua = static_cast<std::uint8_t>(a);
    const std::uint8_t ia = gf256::inv(ua);
    EXPECT_EQ(gf256::mul(ua, ia), 1) << "a = " << a;
    EXPECT_EQ(gf256::inv(ia), ua) << "a = " << a;
  }
}

TEST(Gf256Algebra, ParityRowZeroIsAllOnes) {
  // The column normalization pins row 0 to all-ones — the r=1 XOR fast
  // path (RAID-5 parity) on every k.
  for (const int k : {1, 2, 8, 32, 100, 255}) {
    EXPECT_EQ(gf256::max_parity(k), 256 - k);
    for (int j = 0; j < k; ++j) {
      EXPECT_EQ(gf256::parity_coef(0, j, k), 1) << "k " << k << " j " << j;
    }
  }
}

TEST(Gf256Algebra, AnyKRowsOfTheStackedGeneratorAreInvertible) {
  // MDS: every k-row subset of the (k+r) x k stacked generator [I; C] is
  // nonsingular, i.e. ANY k delivered chunks reconstruct the data.
  // Exhaustive over the subset lattice for small (k, r).
  for (const int k : {2, 4, 8}) {
    const int r = std::min(4, gf256::max_parity(k));
    const int n = k + r;
    std::vector<int> select(static_cast<std::size_t>(n), 0);
    std::fill(select.begin(), select.begin() + k, 1);
    int subsets = 0;
    do {
      std::vector<std::vector<std::uint8_t>> m;
      for (int row = 0; row < n; ++row) {
        if (select[static_cast<std::size_t>(row)] == 0) {
          continue;
        }
        std::vector<std::uint8_t> coefs(static_cast<std::size_t>(k), 0);
        for (int j = 0; j < k; ++j) {
          coefs[static_cast<std::size_t>(j)] =
              row < k ? (row == j ? 1 : 0)
                      : gf256::parity_coef(row - k, j, k);
        }
        m.push_back(std::move(coefs));
      }
      EXPECT_TRUE(gf256::invertible(std::move(m)))
          << "k " << k << ", subset " << subsets;
      ++subsets;
    } while (std::prev_permutation(select.begin(), select.end()));
    EXPECT_GT(subsets, 1);
  }
}

TEST(Gf256Algebra, MulAccXorFastPathAndRaggedTails) {
  const std::vector<std::uint8_t> data = {0x12, 0x34, 0x56, 0x78, 0x9A};
  std::vector<std::uint8_t> acc = {1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<std::uint8_t> before = acc;

  gf256::mul_acc(acc, data, 0);  // coef 0: no-op
  EXPECT_EQ(acc, before);

  gf256::mul_acc(acc, data, 1);  // coef 1: plain XOR, tail untouched
  for (std::size_t i = 0; i < acc.size(); ++i) {
    const std::uint8_t contrib = i < data.size() ? data[i] : 0;
    EXPECT_EQ(acc[i], before[i] ^ contrib) << "i = " << i;
  }

  acc = before;
  gf256::mul_acc(acc, data, 0x5B);  // generic coef: per-byte field product
  for (std::size_t i = 0; i < acc.size(); ++i) {
    const std::uint8_t contrib =
        i < data.size() ? gf256::mul(data[i], 0x5B) : 0;
    EXPECT_EQ(acc[i], before[i] ^ contrib) << "i = " << i;
  }
}

TEST(Gf256Codec, RandomizedEncodeEraseDecodeRoundTrips) {
  std::mt19937 rng(0xFEC2026);
  for (int trial = 0; trial < 150; ++trial) {
    const int k = 1 + static_cast<int>(rng() % 12);
    const int r =
        1 + static_cast<int>(rng() % static_cast<unsigned>(
                                         std::min(4, gf256::max_parity(k))));
    const std::size_t plen = 1 + rng() % 96;

    // Chunks are full-length except a ragged final one (the wire shape).
    std::vector<Buffer> original(static_cast<std::size_t>(k));
    for (int j = 0; j < k; ++j) {
      const std::size_t len = j == k - 1 ? 1 + rng() % plen : plen;
      Buffer& chunk = original[static_cast<std::size_t>(j)];
      chunk.resize(len);
      for (std::uint8_t& b : chunk) {
        b = static_cast<std::uint8_t>(rng());
      }
    }

    std::vector<Buffer> parity(static_cast<std::size_t>(r));
    std::vector<std::span<std::uint8_t>> pspans;
    for (Buffer& row : parity) {
      row.assign(plen, 0);
      pspans.emplace_back(row);
    }
    std::vector<std::span<const std::uint8_t>> dspans;
    for (const Buffer& chunk : original) {
      dspans.emplace_back(chunk);
    }
    gf256::encode_parity(dspans, pspans);

    // Erase up to r random data chunks, recover them from a random (sorted)
    // parity subset of matching size — MDS says any subset works.
    const int erasures =
        static_cast<int>(rng() % static_cast<unsigned>(std::min(r, k) + 1));
    std::vector<int> order(static_cast<std::size_t>(k));
    for (int j = 0; j < k; ++j) {
      order[static_cast<std::size_t>(j)] = j;
    }
    std::shuffle(order.begin(), order.end(), rng);
    std::vector<int> missing(order.begin(), order.begin() + erasures);
    std::sort(missing.begin(), missing.end());

    std::vector<int> prow_order(static_cast<std::size_t>(r));
    for (int i = 0; i < r; ++i) {
      prow_order[static_cast<std::size_t>(i)] = i;
    }
    std::shuffle(prow_order.begin(), prow_order.end(), rng);
    std::vector<int> rows(prow_order.begin(), prow_order.begin() + erasures);
    std::sort(rows.begin(), rows.end());

    std::vector<std::span<const std::uint8_t>> delivered = dspans;
    for (const int j : missing) {
      delivered[static_cast<std::size_t>(j)] = {};
    }
    std::vector<gf256::ParityRow> prows;
    for (const int i : rows) {
      prows.push_back({i, parity[static_cast<std::size_t>(i)]});
    }
    std::vector<Buffer> rebuilt(missing.size());
    std::vector<std::span<std::uint8_t>> outs;
    for (std::size_t m = 0; m < missing.size(); ++m) {
      rebuilt[m].resize(
          original[static_cast<std::size_t>(missing[m])].size());
      outs.emplace_back(rebuilt[m]);
    }
    gf256::decode(delivered, prows, missing, outs);
    for (std::size_t m = 0; m < missing.size(); ++m) {
      EXPECT_EQ(rebuilt[m], original[static_cast<std::size_t>(missing[m])])
          << "trial " << trial << " k " << k << " r " << r << " chunk "
          << missing[m];
    }
  }
}

// ------------------------------------------------------ plan and config

TEST(FecPlanGeometry, CoversEmptySmallAndJumboTotals) {
  const coll::FecConfig cfg;  // k = 8, overhead = 1/8
  const coll::FecPlan empty = coll::fec_plan(0, cfg);
  EXPECT_EQ(empty.chunk_bytes, 1u);
  EXPECT_EQ(empty.n_data, 1);
  EXPECT_EQ(empty.windows, 1);

  const coll::FecPlan one = coll::fec_plan(1, cfg);
  EXPECT_EQ(one.chunk_bytes, 1u);
  EXPECT_EQ(one.n_data, 1);
  EXPECT_EQ(one.windows, 1);
  EXPECT_GT(one.wire_bytes, 1u);  // headers + at least one parity chunk

  const coll::FecPlan mid = coll::fec_plan(100000, cfg);
  EXPECT_EQ(mid.chunk_bytes, 12500u);
  EXPECT_EQ(mid.n_data, 8);
  EXPECT_EQ(mid.windows, 1);
  EXPECT_GT(mid.wire_bytes, 100000u);

  // A total past the datagram ceiling clamps the chunk and spills into
  // multiple windows of k.
  const coll::FecPlan jumbo = coll::fec_plan(8u << 20, cfg);
  EXPECT_GE(static_cast<std::size_t>(jumbo.n_data) * jumbo.chunk_bytes,
            8u << 20);
  EXPECT_EQ(jumbo.windows, (jumbo.n_data + cfg.k - 1) / cfg.k);
  EXPECT_GT(jumbo.windows, 1);

  // Adaptive plans budget the receive buffer for the ratchet's ceiling.
  coll::FecConfig adaptive = cfg;
  adaptive.adaptive = true;
  EXPECT_GT(coll::fec_plan(100000, adaptive).wire_bytes, mid.wire_bytes);
}

ClusterConfig faulty_config(int procs, NetworkType net,
                            const FaultProfile& link,
                            std::uint64_t seed = 11) {
  ClusterConfig config;
  config.num_procs = procs;
  config.network = net;
  config.seed = seed;
  config.faults.link = link;
  return config;
}

TEST(FecMcast, RejectsOutOfRangeConfig) {
  Cluster cluster(faulty_config(2, NetworkType::kSwitch, FaultProfile{}));
  cluster.world().run([](mpi::Proc& p) {
    const auto expect_bad = [&](const coll::FecConfig& bad) {
      EXPECT_THROW(coll::set_fec_config(p, p.comm_world(), bad),
                   std::invalid_argument);
    };
    coll::FecConfig bad;
    bad.k = 0;
    expect_bad(bad);
    bad = coll::FecConfig{};
    bad.k = 256;
    expect_bad(bad);
    bad = coll::FecConfig{};
    bad.overhead = 0.0;
    expect_bad(bad);
    bad = coll::FecConfig{};
    bad.overhead = 2.5;
    expect_bad(bad);
    bad = coll::FecConfig{};
    bad.max_overhead = 0.01;  // below the floor
    expect_bad(bad);
    bad = coll::FecConfig{};
    bad.raise_threshold = 0;
    expect_bad(bad);
    bad = coll::FecConfig{};
    bad.calm_ops = 0;
    expect_bad(bad);
    bad = coll::FecConfig{};
    bad.fallback_timeout = kTimeZero;
    expect_bad(bad);
    bad = coll::FecConfig{};
    bad.fallback_backoff = 0.5;
    expect_bad(bad);
    bad = coll::FecConfig{};
    bad.fallback_timeout_cap = microseconds(1);  // below the timeout
    expect_bad(bad);
    bad = coll::FecConfig{};
    bad.max_fallback_retries = -1;
    expect_bad(bad);
    bad = coll::FecConfig{};
    bad.aggregation_window = microseconds(-1);
    expect_bad(bad);
    bad = coll::FecConfig{};
    bad.history_frames = 0;
    expect_bad(bad);
    // The defaults themselves round-trip.
    coll::set_fec_config(p, p.comm_world(), coll::FecConfig{});
    EXPECT_EQ(coll::fec_config(p, p.comm_world()).k, 8);
  });
}

// -------------------------------------------------- conformance sweep

TEST(FecConformance, MatchesMpichAcrossRanksTopologiesAndLoss) {
  struct Topo {
    NetworkType net;
    int segments;
    const char* name;
  };
  const std::vector<Topo> topologies = {{NetworkType::kHub, 1, "hub"},
                                        {NetworkType::kSwitch, 1, "switch"},
                                        {NetworkType::kSwitch, 2, "2-seg"}};
  struct LossMode {
    const char* name;
    FaultProfile profile;
  };
  const std::vector<LossMode> modes = {
      {"clean", FaultProfile{}},
      {"loss1", FaultProfile{.loss = 0.01}},
      {"loss5", FaultProfile{.loss = 0.05}},
      {"bursty", FaultProfile{.ge_good_to_bad = 0.02,
                              .ge_bad_to_good = 0.25,
                              .ge_loss_bad = 0.5}},
  };
  for (const int ranks : {2, 3, 9, 16}) {
    for (const Topo& topo : topologies) {
      for (const LossMode& mode : modes) {
        ClusterConfig config =
            faulty_config(ranks, topo.net, mode.profile);
        config.num_segments = topo.segments;
        if (topo.segments > 1 && mode.profile.lossy()) {
          config.faults.trunk.loss = 0.02;  // the lossy trunk
        }
        if (ranks > cluster::kMaxEagleHosts) {
          config.hosts = cluster::make_uniform_hosts(ranks);
        }
        const std::string what = std::to_string(ranks) + " ranks, " +
                                 topo.name + ", " + mode.name;
        Cluster cluster(config);
        std::vector<int> ok(static_cast<std::size_t>(ranks), 1);
        cluster.world().run([&](mpi::Proc& p) {
          for (const std::size_t bytes :
               {std::size_t{1}, std::size_t{1024}, std::size_t{65536}}) {
            Buffer fec;
            Buffer ref;
            if (p.rank() == 0) {
              fec = pattern_payload(bytes + 7, bytes);
              ref = pattern_payload(bytes + 7, bytes);
            }
            p.comm_world().coll().bcast(fec, 0, "fec-mcast");
            p.comm_world().coll().bcast(ref, 0, "mpich");
            if (fec.size() != bytes || fec != ref ||
                !check_pattern(bytes + 7, fec)) {
              ok[static_cast<std::size_t>(p.rank())] = 0;
            }
          }
        });
        for (int r = 0; r < ranks; ++r) {
          EXPECT_TRUE(ok[static_cast<std::size_t>(r)])
              << what << ", rank " << r;
        }
      }
    }
  }
}

TEST(FecMcast, EmptyBroadcastDelivers) {
  for (const double loss : {0.0, 0.05}) {
    Cluster cluster(faulty_config(3, NetworkType::kSwitch,
                                  FaultProfile{.loss = loss}));
    cluster.world().run([](mpi::Proc& p) {
      Buffer data;
      p.comm_world().coll().bcast(data, 0, "fec-mcast");
      EXPECT_EQ(data.size(), 0u);
    });
  }
}

// ------------------------------------------------ recovery and counters

TEST(FecMcast, CleanWireSendsParityButNeverDecodes) {
  Cluster cluster(faulty_config(9, NetworkType::kSwitch, FaultProfile{}));
  cluster.world().run([](mpi::Proc& p) {
    for (int i = 0; i < 4; ++i) {
      Buffer data;
      if (p.rank() == 0) {
        data = pattern_payload(i, 64000);
      }
      p.comm_world().coll().bcast(data, 0, "fec-mcast");
      EXPECT_TRUE(check_pattern(i, data)) << "rank " << p.rank();
    }
  });
  const sim::SchedCounters sched = cluster.simulator().sched_counters();
  // 64000 B under k=8 is one window per op, overhead 1/8 -> exactly one
  // parity frame each; none of it is ever consumed on a clean wire.
  EXPECT_EQ(sched.parity_sent, 4u);
  EXPECT_EQ(sched.parity_used, 0u);
  EXPECT_EQ(sched.fec_decodes, 0u);
  EXPECT_EQ(sched.fec_fallbacks, 0u);
  EXPECT_EQ(sched.frames_dropped, 0u);
}

TEST(FecMcast, LowLossIsAbsorbedByInWindowDecodes) {
  Cluster cluster(
      faulty_config(9, NetworkType::kSwitch, FaultProfile{.loss = 0.01}));
  cluster.world().run([](mpi::Proc& p) {
    for (int i = 0; i < 4; ++i) {
      Buffer data;
      if (p.rank() == 0) {
        data = pattern_payload(i, 64000);
      }
      p.comm_world().coll().bcast(data, 0, "fec-mcast");
      EXPECT_TRUE(check_pattern(i, data)) << "rank " << p.rank();
    }
  });
  const sim::SchedCounters sched = cluster.simulator().sched_counters();
  EXPECT_EQ(sched.parity_sent, 4u);
  EXPECT_GT(sched.frames_dropped, 0u);
  EXPECT_GT(sched.fec_decodes, 0u);
  EXPECT_GE(sched.parity_used, sched.fec_decodes);
}

TEST(FecMcast, LossBeyondParityFallsBackToNackAndDelivers) {
  Cluster cluster(
      faulty_config(5, NetworkType::kSwitch, FaultProfile{.loss = 0.3}));
  cluster.world().run([](mpi::Proc& p) {
    coll::FecConfig cfg;
    cfg.fallback_timeout = milliseconds(1);
    cfg.fallback_timeout_cap = milliseconds(16);
    coll::set_fec_config(p, p.comm_world(), cfg);
    for (int i = 0; i < 2; ++i) {
      Buffer data;
      if (p.rank() == 0) {
        data = pattern_payload(30 + i, 16000);
      }
      p.comm_world().coll().bcast(data, 0, "fec-mcast");
      EXPECT_TRUE(check_pattern(30 + i, data)) << "rank " << p.rank();
    }
  });
  const sim::SchedCounters sched = cluster.simulator().sched_counters();
  EXPECT_GT(sched.frames_dropped, 0u);
  EXPECT_GT(sched.fec_fallbacks, 0u);  // parity alone could not absorb 30%
  EXPECT_GT(sched.retransmits, 0u);    // the history served the NACKs
}

TEST(FecMcast, TotalLossIsAHardErrorNotAHang) {
  Cluster cluster(
      faulty_config(4, NetworkType::kSwitch, FaultProfile{.loss = 1.0}));
  EXPECT_THROW(
      cluster.world().run([](mpi::Proc& p) {
        coll::FecConfig cfg;
        cfg.fallback_timeout = milliseconds(1);
        cfg.max_fallback_retries = 3;
        coll::set_fec_config(p, p.comm_world(), cfg);
        Buffer data;
        if (p.rank() == 0) {
          data = pattern_payload(1, 500);
        }
        p.comm_world().coll().bcast(data, 0, "fec-mcast");
      }),
      std::runtime_error);
}

TEST(FecMcast, AdaptiveRatchetRaisesOverheadUnderLossOnly) {
  const auto run_adaptive = [](const FaultProfile& profile, double* working,
                               std::uint64_t* raises) {
    Cluster cluster(faulty_config(6, NetworkType::kSwitch, profile));
    cluster.world().run([&](mpi::Proc& p) {
      coll::FecConfig cfg;
      cfg.adaptive = true;  // floor 1/8, ceiling 1/2
      coll::set_fec_config(p, p.comm_world(), cfg);
      for (int i = 0; i < 8; ++i) {
        Buffer data;
        if (p.rank() == 0) {
          data = pattern_payload(i, 16000);
        }
        p.comm_world().coll().bcast(data, 0, "fec-mcast");
        EXPECT_TRUE(check_pattern(i, data)) << "rank " << p.rank();
      }
      if (p.rank() == 0) {
        *working = coll::fec_working_overhead(p, p.comm_world());
        *raises = coll::fec_stats(p, p.comm_world()).overhead_raises;
      }
    });
  };
  double working = 0.0;
  std::uint64_t raises = 0;
  run_adaptive(FaultProfile{.loss = 0.05}, &working, &raises);
  EXPECT_GT(working, 0.125);  // observed drops ratcheted the parity up
  EXPECT_GE(raises, 1u);
  run_adaptive(FaultProfile{}, &working, &raises);
  EXPECT_DOUBLE_EQ(working, 0.125);  // a clean wire stays at the floor
  EXPECT_EQ(raises, 0u);
}

TEST(FecMcast, LossyAutoSelectionPrefersFec) {
  // The default tuning table gates the fec-mcast rule on a lossy network:
  // clean-wire schedules are untouched, lossy ones pre-empt mcast-binary.
  Cluster lossy(
      faulty_config(9, NetworkType::kSwitch, FaultProfile{.loss = 0.05}));
  lossy.world().run([](mpi::Proc& p) {
    EXPECT_TRUE(p.network_lossy());
    const coll::Coll facade = p.comm_world().coll();
    EXPECT_EQ(facade.resolve(coll::CollOp::kBcast, 64 * 1024), "fec-mcast");
    EXPECT_EQ(facade.resolve(coll::CollOp::kBcast, 512), "mpich");
    // Payloads past fec-mcast's single-blast window fall through to the
    // (loss-tolerant) segmented pipeline.
    EXPECT_EQ(facade.resolve(coll::CollOp::kBcast, 16u << 20),
              "mcast-segmented");
  });
  Cluster clean(faulty_config(9, NetworkType::kSwitch, FaultProfile{}));
  clean.world().run([](mpi::Proc& p) {
    EXPECT_FALSE(p.network_lossy());
    EXPECT_EQ(p.comm_world().coll().resolve(coll::CollOp::kBcast, 64 * 1024),
              "mcast-binary");
  });
}

// ------------------------------------------- segmented FEC recovery mode

coll::SegmentedConfig seg_fec_config(std::size_t chunk, int window, int lanes,
                                     double fec_overhead) {
  coll::SegmentedConfig cfg;
  cfg.chunk_bytes = chunk;
  cfg.window = window;
  cfg.lanes = lanes;
  cfg.fec_overhead = fec_overhead;
  cfg.retransmit_timeout = milliseconds(2);
  cfg.retransmit_backoff = 2.0;
  cfg.retransmit_timeout_cap = milliseconds(400);
  cfg.max_retries = 50;
  return cfg;
}

TEST(SegmentedFec, RejectsOutOfRangeConfig) {
  // set_segmented_config validates through the contract macros, so the
  // whole config surface (FEC knobs included) fails uniformly.
  Cluster cluster(faulty_config(2, NetworkType::kSwitch, FaultProfile{}));
  cluster.world().run([](mpi::Proc& p) {
    coll::SegmentedConfig bad;
    bad.fec_overhead = -0.1;
    EXPECT_THROW(coll::set_segmented_config(p, p.comm_world(), bad),
                 ContractViolation);
    bad = coll::SegmentedConfig{};
    bad.fec_overhead = 1.5;
    EXPECT_THROW(coll::set_segmented_config(p, p.comm_world(), bad),
                 ContractViolation);
    // A generation must fit one FEC window: window > 128 only without FEC.
    bad = coll::SegmentedConfig{};
    bad.window = 256;
    bad.fec_overhead = 0.25;
    EXPECT_THROW(coll::set_segmented_config(p, p.comm_world(), bad),
                 ContractViolation);
    coll::SegmentedConfig ok;
    ok.window = 256;  // fine while the FEC recovery mode is off
    EXPECT_NO_THROW(coll::set_segmented_config(p, p.comm_world(), ok));
  });
}

TEST(SegmentedFec, CleanWireSendsParityAndNeverDecodes) {
  Cluster cluster(faulty_config(5, NetworkType::kSwitch, FaultProfile{}));
  const std::size_t payload = 256 * 1024;
  cluster.world().run([&](mpi::Proc& p) {
    coll::set_segmented_config(p, p.comm_world(),
                               seg_fec_config(4096, 4, 2, 0.25));
    Buffer seg;
    Buffer ref;
    if (p.rank() == 0) {
      seg = pattern_payload(21, payload);
      ref = pattern_payload(21, payload);
    }
    p.comm_world().coll().bcast(seg, 0, "mcast-segmented");
    p.comm_world().coll().bcast(ref, 0, "mpich");
    EXPECT_EQ(seg, ref) << "rank " << p.rank();
    EXPECT_TRUE(check_pattern(21, seg)) << "rank " << p.rank();
  });
  const sim::SchedCounters sched = cluster.simulator().sched_counters();
  // 64 chunks over 2 lanes = 32 per lane, in generations of window 4 with
  // ceil(4 * 0.25) = 1 parity frame each: 16 parity frames, none consumed.
  EXPECT_EQ(sched.parity_sent, 16u);
  EXPECT_EQ(sched.parity_used, 0u);
  EXPECT_EQ(sched.fec_decodes, 0u);
  EXPECT_EQ(sched.frames_dropped, 0u);
}

TEST(SegmentedFec, JumboBcastRecoversViaParityUnderLoss) {
  Cluster cluster(
      faulty_config(9, NetworkType::kSwitch, FaultProfile{.loss = 0.01}));
  const std::size_t payload = 16u << 20;
  std::vector<int> ok(9, 0);
  cluster.world().run([&](mpi::Proc& p) {
    coll::set_segmented_config(p, p.comm_world(),
                               seg_fec_config(65536, 8, 2, 0.25));
    Buffer data;
    if (p.rank() == 0) {
      data = pattern_payload(16, payload);
    }
    p.comm_world().coll().bcast(data, 0, "mcast-segmented");
    ok[static_cast<std::size_t>(p.rank())] =
        data.size() == payload && check_pattern(16, data);
  });
  for (int r = 0; r < 9; ++r) {
    EXPECT_TRUE(ok[static_cast<std::size_t>(r)]) << "rank " << r;
  }
  const sim::SchedCounters sched = cluster.simulator().sched_counters();
  EXPECT_GT(sched.frames_dropped, 0u);
  EXPECT_GT(sched.parity_sent, 0u);
  EXPECT_GT(sched.fec_decodes, 0u);  // generation losses healed in-window
  EXPECT_GE(sched.parity_used, sched.fec_decodes);
}

}  // namespace
}  // namespace mcmpi
