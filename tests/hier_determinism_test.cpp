// Determinism matrix for the hierarchical collectives and the resharded
// multi-segment simulator:
//
//   * worker counts {1, 2, 4} × {serial, parallel} driver × {fiber, thread}
//     backend produce BIT-IDENTICAL latencies and merged scheduler/frame
//     counters on 2- and 4-segment topologies — including hubs, whose
//     CSMA/CD backoffs now draw from per-device RNG streams, and the merged
//     SchedCounters, which are a pure function of the simulation now that
//     the cluster always creates one logical shard per segment;
//   * retransmit-style wait_until deadlines landing exactly on a
//     conservative window boundary fire at their exact simulated time under
//     both drivers (the satellite-3 boundary regression), charged wakes
//     crossing a boundary included.
#include <gtest/gtest.h>

#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/experiment.hpp"
#include "coll/facade.hpp"
#include "common/bytes.hpp"
#include "net/counters.hpp"
#include "sim/wait.hpp"

namespace mcmpi {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::NetworkType;

// ------------------------------------------- window-boundary regression

/// What the boundary workload leaves behind: (label, wake time ns) pairs in
/// wake order, plus the merged scheduler counters.
struct BoundaryTrace {
  std::vector<std::pair<std::string, std::int64_t>> wakes;
  sim::SchedCounters sched;
  std::uint64_t events_scheduled = 0;

  bool operator==(const BoundaryTrace& other) const {
    return wakes == other.wakes &&
           sched.handoffs == other.sched.handoffs &&
           sched.coalesced_delays == other.sched.coalesced_delays &&
           sched.events_executed == other.sched.events_executed &&
           events_scheduled == other.events_scheduled;
  }
};

/// Two shards, 10 us lookahead.  Shard 1 keeps cross-shard traffic flowing
/// so shard 0's rounds really are clamped to lookahead-sized windows; on
/// shard 0, timed waits expire exactly ON window boundaries (10 us, 20 us)
/// and a charged wake straddles one (notify at 8 us + 4 us charge = 12 us).
BoundaryTrace run_boundary(sim::ShardDriver driver, unsigned workers) {
  BoundaryTrace trace;
  const SimTime lookahead = microseconds(10);
  sim::ShardingConfig cfg;
  cfg.shards = 2;
  cfg.lookahead = lookahead;
  cfg.driver = driver;
  cfg.workers = workers;
  sim::Simulator sim(/*seed=*/3, sim::default_execution_backend(), cfg);

  // Shard 1: cross traffic in 2 us steps, far past the last deadline, so
  // every shard-0 window ends exactly at a multiple of the lookahead.
  sim.spawn_on(1, "ticker", [&sim](sim::SimProcess& self) {
    for (int i = 0; i < 30; ++i) {
      sim.schedule_cross(0, self.now() + microseconds(10), [] {});
      self.delay(microseconds(2));
    }
  });

  sim::WaitQueue never;          // nobody notifies: pure timeouts
  sim::WaitQueue charged_queue;  // notified with a wake charge
  bool charged_ready = false;

  sim.spawn_on(0, "timeout-on-boundary", [&](sim::SimProcess& self) {
    // Deadline exactly at one window boundary...
    EXPECT_FALSE(never.wait_until(self, microseconds(10)));
    trace.wakes.emplace_back("boundary-10us", self.now().count());
    // ...and exactly at the next (relative deadline hits t = 20 us).
    EXPECT_FALSE(never.wait_until(self, microseconds(20)));
    trace.wakes.emplace_back("boundary-20us", self.now().count());
  });

  sim.spawn_on(0, "charged-across-boundary", [&](sim::SimProcess& self) {
    const auto result = sim::wait_for_until_charged(
        self, charged_queue, /*deadline=*/microseconds(25),
        [&] { return charged_ready; }, [] { return microseconds(4); });
    EXPECT_TRUE(result.satisfied);
    EXPECT_TRUE(result.absorbed);
    trace.wakes.emplace_back("charged-12us", self.now().count());
  });

  sim.spawn_on(0, "notifier", [&](sim::SimProcess& self) {
    self.delay(microseconds(8));  // wake charge lands at 12 us — inside
    charged_ready = true;         // the round AFTER the 10 us boundary
    charged_queue.notify_one();
  });

  sim.run();
  trace.sched = sim.sched_counters();
  trace.events_scheduled = sim.events_scheduled();
  return trace;
}

TEST(WindowBoundary, TimersOnTheBoundaryFireAtTheirExactSimulatedTime) {
  const BoundaryTrace serial = run_boundary(sim::ShardDriver::kSerial, 1);
  // Wakes in virtual-time order: boundary-10us, charged-12us, boundary-20us.
  ASSERT_EQ(serial.wakes.size(), 3u);
  EXPECT_EQ(serial.wakes[0],
            (std::pair<std::string, std::int64_t>{"boundary-10us",
                                                  microseconds(10).count()}));
  EXPECT_EQ(serial.wakes[1],
            (std::pair<std::string, std::int64_t>{"charged-12us",
                                                  microseconds(12).count()}));
  EXPECT_EQ(serial.wakes[2],
            (std::pair<std::string, std::int64_t>{"boundary-20us",
                                                  microseconds(20).count()}));
}

TEST(WindowBoundary, BoundaryTimersAreIdenticalAcrossDriversAndWorkers) {
  const BoundaryTrace reference = run_boundary(sim::ShardDriver::kSerial, 1);
  for (const unsigned workers : {1u, 2u}) {
    const BoundaryTrace parallel =
        run_boundary(sim::ShardDriver::kParallel, workers);
    EXPECT_TRUE(reference == parallel)
        << "boundary wake divergence with " << workers << " workers";
  }
}

// ------------------------------------------------- hier workload matrix

/// Everything one hierarchical run leaves behind that the matrix compares.
struct Trace {
  std::vector<double> latencies_us;
  net::NetCounters net;
  sim::SchedCounters sched;
  std::uint64_t events_scheduled = 0;

  bool same_times(const Trace& other) const {
    return latencies_us == other.latencies_us;
  }
  bool same_counters(const Trace& other) const {
    return net.host_tx_frames == other.net.host_tx_frames &&
           net.host_tx_bytes == other.net.host_tx_bytes &&
           net.deliveries == other.net.deliveries &&
           net.collisions == other.net.collisions &&
           sched.handoffs == other.sched.handoffs &&
           sched.coalesced_delays == other.sched.coalesced_delays &&
           sched.batched_callbacks == other.sched.batched_callbacks &&
           sched.events_executed == other.sched.events_executed &&
           events_scheduled == other.events_scheduled;
  }
};

/// One hierarchical mixed-collective run: kAuto bcast/allreduce/barrier
/// under the hier_defaults tuning table plus an explicit hier allgather,
/// over non-uniform per-pair trunk latencies (so the adaptive lookahead
/// matrix is actually in play).
Trace run_hier_workload(NetworkType network, int procs, int segments,
                        unsigned workers, sim::ShardDriver driver,
                        sim::ExecutionBackend backend =
                            sim::default_execution_backend()) {
  ClusterConfig config;
  config.network = network;
  config.num_procs = procs;
  config.num_segments = segments;
  config.sim_shards = workers;
  config.shard_driver = driver;
  config.sim_backend = backend;
  config.seed = 19;
  config.coll_tuning = coll::TuningTable::hier_defaults().to_string();
  config.trunk_latency_of = [](int a, int b) {
    // Asymmetric mesh: the (0, 1) trunk is fast, pairs touching the last
    // segment are slow, everything else uses the uniform default.
    if (a == 0 && b == 1) {
      return microseconds(20);
    }
    return SimTime{};
  };
  if (procs > cluster::kMaxEagleHosts) {
    config.hosts = cluster::make_uniform_hosts(procs);
  }
  Cluster cluster(config);

  cluster::ExperimentConfig exp;
  exp.reps = 4;
  exp.warmup_reps = 1;
  constexpr std::size_t kBytes = 8192;
  const auto result = cluster::measure_collective(
      cluster, exp, [](mpi::Proc& p, int rep) {
        const mpi::Comm comm = p.comm_world();
        const int root = rep % comm.size();
        Buffer data(kBytes, 0);
        if (p.rank() == root) {
          data = pattern_payload(static_cast<std::uint64_t>(rep), kBytes);
        }
        comm.coll().bcast(data, root);  // kAuto -> hier-mcast
        EXPECT_TRUE(check_pattern(static_cast<std::uint64_t>(rep), data));

        const Buffer mine = pattern_payload(
            static_cast<std::uint64_t>(p.rank()) * 131 + 5, 2048);
        const Buffer agreed = comm.coll().allreduce(
            mine, mpi::Op::kBor, mpi::Datatype::kByte);  // kAuto -> hier
        EXPECT_EQ(agreed.size(), 2048u);

        const auto blocks =
            comm.coll().allgather(std::span<const std::uint8_t>(
                                      mine.data(), 512),
                                  "hier");
        EXPECT_EQ(blocks.size(), static_cast<std::size_t>(comm.size()));

        comm.coll().barrier();  // kAuto -> hier
      });

  Trace trace;
  trace.latencies_us = result.latencies_us.values();
  trace.net = cluster.net_counters();
  trace.sched = cluster.simulator().sched_counters();
  trace.events_scheduled = cluster.simulator().events_scheduled();
  return trace;
}

struct MatrixCase {
  NetworkType network;
  int procs;
  int segments;
};

class HierMatrix : public ::testing::TestWithParam<MatrixCase> {};

INSTANTIATE_TEST_SUITE_P(
    Topologies, HierMatrix,
    ::testing::Values(MatrixCase{NetworkType::kSwitch, 8, 4},
                      MatrixCase{NetworkType::kSwitch, 7, 2},
                      MatrixCase{NetworkType::kHub, 6, 2},
                      MatrixCase{NetworkType::kHub, 8, 4}),
    [](const ::testing::TestParamInfo<MatrixCase>& info) {
      const MatrixCase& c = info.param;
      return cluster::to_string(c.network) + std::to_string(c.procs) + "p" +
             std::to_string(c.segments) + "seg";
    });

// The acceptance matrix: every worker count and both drivers produce the
// bit-identical run — latencies AND counters — on every topology,
// CSMA/CD hubs included (per-device backoff streams + one logical shard
// per segment make the schedule a pure function of the topology).
TEST_P(HierMatrix, WorkerCountAndDriverNeverChangeTheRun) {
  const MatrixCase& c = GetParam();
  const Trace reference = run_hier_workload(c.network, c.procs, c.segments, 1,
                                            sim::ShardDriver::kSerial);
  ASSERT_EQ(reference.latencies_us.size(), 4u);
  for (const unsigned workers : {1u, 2u, 4u}) {
    for (const auto driver :
         {sim::ShardDriver::kSerial, sim::ShardDriver::kParallel}) {
      if (workers == 1 && driver == sim::ShardDriver::kSerial) {
        continue;  // the reference itself
      }
      const Trace run =
          run_hier_workload(c.network, c.procs, c.segments, workers, driver);
      EXPECT_TRUE(reference.same_times(run))
          << "latency divergence at " << workers << " workers, "
          << (driver == sim::ShardDriver::kSerial ? "serial" : "parallel");
      EXPECT_TRUE(reference.same_counters(run))
          << "counter divergence at " << workers << " workers, "
          << (driver == sim::ShardDriver::kSerial ? "serial" : "parallel");
    }
  }
}

TEST(HierMatrixCross, FiberAndThreadBackendsMatch) {
  const Trace fiber =
      run_hier_workload(NetworkType::kSwitch, 8, 4, 2,
                        sim::ShardDriver::kParallel,
                        sim::ExecutionBackend::kFiber);
  const Trace thread =
      run_hier_workload(NetworkType::kSwitch, 8, 4, 2,
                        sim::ShardDriver::kParallel,
                        sim::ExecutionBackend::kThread);
  EXPECT_TRUE(fiber.same_times(thread));
  EXPECT_TRUE(fiber.same_counters(thread));
}

// The merged SchedCounters of a fixed multi-segment run are pinned: any
// future change that makes them depend on shard layout (or silently alters
// the schedule) trips this before it can corrupt a committed baseline.
TEST(HierMatrixCross, MergedSchedCountersArePinned) {
  const Trace t = run_hier_workload(NetworkType::kSwitch, 8, 4, 4,
                                    sim::ShardDriver::kParallel);
  const Trace again = run_hier_workload(NetworkType::kSwitch, 8, 4, 2,
                                        sim::ShardDriver::kSerial);
  EXPECT_TRUE(t.same_counters(again));
  EXPECT_TRUE(t.same_times(again));
  // Exact pins (update deliberately, with the schedule change that owns
  // them): the values must be a pure function of the simulation.
  EXPECT_EQ(t.sched.events_executed, 6311u) << "PIN-events_executed";
  EXPECT_EQ(t.sched.handoffs, 688u) << "PIN-handoffs";
  EXPECT_EQ(t.events_scheduled, 6925u) << "PIN-events_scheduled";
}

}  // namespace
}  // namespace mcmpi
