// Hierarchical (MagPIe-style) collective conformance: bcast:hier-mcast,
// barrier:hier, allreduce:hier and allgather:hier on multi-segment
// topologies — ragged segment blocks, roots in every segment, hub and
// switch media, dup/split (including interleaved, non-contiguous)
// communicators, lossy trunks, and the min_segments tuning gate that keeps
// the hierarchy away from single-segment communicators.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <numeric>

#include "cluster/cluster.hpp"
#include "cluster/experiment.hpp"
#include "coll/facade.hpp"
#include "coll/hier.hpp"
#include "common/bytes.hpp"

namespace mcmpi {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::NetworkType;

ClusterConfig config_for(int procs, int segments,
                         NetworkType net = NetworkType::kSwitch) {
  ClusterConfig config;
  config.num_procs = procs;
  config.num_segments = segments;
  config.network = net;
  config.seed = 31;
  if (procs > static_cast<int>(cluster::kMaxEagleHosts)) {
    config.hosts = cluster::make_uniform_hosts(procs);
  }
  return config;
}

// ------------------------------------------------------- decomposition

TEST(HierState, RaggedSegmentsElectSmallestRankPerSegment) {
  // 7 ranks over 3 segments: contiguous blocks 3/2/2.
  Cluster cluster(config_for(7, 3));
  std::vector<coll::HierState> states(7);
  cluster.world().run([&](mpi::Proc& p) {
    const coll::HierState& st = coll::hier_state(p, p.comm_world());
    coll::HierState& copy = states[static_cast<std::size_t>(p.rank())];
    copy.seg_of = st.seg_of;
    copy.leaders = st.leaders;
    copy.members = st.members;
    copy.my_segment_idx = st.my_segment_idx;
    copy.contiguous = st.contiguous;
    copy.built = st.intra.size() > 0;
  });
  const std::vector<int> want_seg{0, 0, 0, 1, 1, 2, 2};
  const std::vector<int> want_leaders{0, 3, 5};
  const std::vector<std::vector<int>> want_members{{0, 1, 2}, {3, 4}, {5, 6}};
  for (int r = 0; r < 7; ++r) {
    const coll::HierState& st = states[static_cast<std::size_t>(r)];
    EXPECT_EQ(st.seg_of, want_seg) << "rank " << r;
    EXPECT_EQ(st.leaders, want_leaders) << "rank " << r;
    EXPECT_EQ(st.members, want_members) << "rank " << r;
    EXPECT_EQ(st.my_segment_idx, want_seg[static_cast<std::size_t>(r)]);
    EXPECT_TRUE(st.contiguous) << "rank " << r;
    EXPECT_TRUE(st.built) << "rank " << r;
  }
}

TEST(HierState, ApplicabilityAndSpan) {
  Cluster cluster(config_for(6, 3));
  bool applicable = false;
  bool contiguous = false;
  int span = 0;
  bool intra_applicable = true;
  int intra_span = 0;
  cluster.world().run([&](mpi::Proc& p) {
    const mpi::Comm world = p.comm_world();
    const coll::HierState& st = coll::hier_state(p, world);
    if (p.rank() == 0) {
      applicable = coll::hier_applicable(world);
      contiguous = coll::hier_applicable_contiguous(world);
      span = coll::hier_segment_span(world);
      intra_applicable = coll::hier_applicable(st.intra);
      intra_span = coll::hier_segment_span(st.intra);
    }
  });
  EXPECT_TRUE(applicable);
  EXPECT_TRUE(contiguous);
  EXPECT_EQ(span, 3);
  EXPECT_FALSE(intra_applicable)
      << "single-segment intra comm must reject hier (recursion guard)";
  EXPECT_EQ(intra_span, 1);
}

TEST(HierState, SingleSegmentWorldIsNotApplicable) {
  Cluster cluster(config_for(4, 1));
  bool applicable = true;
  int span = 0;
  cluster.world().run([&](mpi::Proc& p) {
    if (p.rank() == 0) {
      applicable = coll::hier_applicable(p.comm_world());
      span = coll::hier_segment_span(p.comm_world());
    }
  });
  EXPECT_FALSE(applicable);
  EXPECT_EQ(span, 1);
}

// ----------------------------------------------------- bcast conformance

struct BcastCase {
  int procs;
  int segments;
  NetworkType net;
  int payload;
  int root;
};

class HierBcast : public ::testing::TestWithParam<BcastCase> {};

TEST_P(HierBcast, EveryRankGetsThePayload) {
  const BcastCase c = GetParam();
  Cluster cluster(config_for(c.procs, c.segments, c.net));
  std::vector<int> ok(static_cast<std::size_t>(c.procs), 0);
  cluster.world().run([&](mpi::Proc& p) {
    Buffer data;
    if (p.rank() == c.root) {
      data = pattern_payload(99, static_cast<std::size_t>(c.payload));
    }
    p.comm_world().coll().bcast(data, c.root, "hier-mcast");
    ok[static_cast<std::size_t>(p.rank())] =
        data.size() == static_cast<std::size_t>(c.payload) &&
        check_pattern(99, data);
  });
  for (int r = 0; r < c.procs; ++r) {
    EXPECT_TRUE(ok[static_cast<std::size_t>(r)]) << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HierBcast,
    ::testing::Values(
        // Ragged 3/2/2 blocks, root in each of the three segments.
        BcastCase{7, 3, NetworkType::kSwitch, 1472, 0},
        BcastCase{7, 3, NetworkType::kSwitch, 16384, 4},
        BcastCase{7, 3, NetworkType::kSwitch, 0, 6},
        BcastCase{8, 4, NetworkType::kSwitch, 16384, 0},
        // Rendezvous-sized: trunk transfers ride RTS/CTS.
        BcastCase{9, 3, NetworkType::kSwitch, 100000, 8},
        // One rank per segment: every intra phase degenerates.
        BcastCase{5, 5, NetworkType::kSwitch, 512, 2},
        // Shared-medium segments (CSMA/CD hubs) joined by trunks.
        BcastCase{6, 2, NetworkType::kHub, 2000, 3},
        // Beyond the eagle host table.
        BcastCase{12, 4, NetworkType::kSwitch, 4096, 5}),
    [](const auto& info) {
      const BcastCase& c = info.param;
      return "p" + std::to_string(c.procs) + "_s" +
             std::to_string(c.segments) + "_" + cluster::to_string(c.net) +
             "_b" + std::to_string(c.payload) + "_r" +
             std::to_string(c.root);
    });

// ---------------------------------------------------------------- barrier

TEST(HierBarrier, NoRankLeavesBeforeTheLastArrives) {
  constexpr int kProcs = 6;
  Cluster cluster(config_for(kProcs, 3));
  std::vector<SimTime> left(kProcs, SimTime{});
  cluster.world().run([&](mpi::Proc& p) {
    p.self().delay(milliseconds(p.rank() + 1));
    p.comm_world().coll().barrier("hier");
    left[static_cast<std::size_t>(p.rank())] = p.self().now();
  });
  for (int r = 0; r < kProcs; ++r) {
    EXPECT_GE(left[static_cast<std::size_t>(r)].count(),
              milliseconds(kProcs).count())
        << "rank " << r << " left before the slowest rank arrived";
  }
}

TEST(HierBarrier, BackToBackBarriersStaySynchronized) {
  constexpr int kProcs = 8;
  Cluster cluster(config_for(kProcs, 4));
  std::vector<int> rounds(kProcs, 0);
  cluster.world().run([&](mpi::Proc& p) {
    for (int i = 0; i < 3; ++i) {
      p.comm_world().coll().barrier("hier");
      ++rounds[static_cast<std::size_t>(p.rank())];
    }
  });
  for (int r = 0; r < kProcs; ++r) {
    EXPECT_EQ(rounds[static_cast<std::size_t>(r)], 3) << "rank " << r;
  }
}

// -------------------------------------------------------------- allreduce

TEST(HierAllreduce, MatchesMpichForVectorSums) {
  constexpr int kProcs = 8;
  constexpr std::size_t kElems = 512;  // 4 KiB of int64
  Cluster cluster(config_for(kProcs, 4));
  std::vector<Buffer> hier(kProcs);
  std::vector<Buffer> mpich(kProcs);
  cluster.world().run([&](mpi::Proc& p) {
    std::vector<std::int64_t> mine(kElems);
    for (std::size_t i = 0; i < kElems; ++i) {
      mine[i] = static_cast<std::int64_t>(i) * (p.rank() + 1);
    }
    Buffer bytes(kElems * sizeof(std::int64_t));
    std::memcpy(bytes.data(), mine.data(), bytes.size());
    const auto r = static_cast<std::size_t>(p.rank());
    hier[r] = p.comm_world().coll().allreduce(bytes, mpi::Op::kSum,
                                              mpi::Datatype::kInt64, "hier");
    mpich[r] = p.comm_world().coll().allreduce(bytes, mpi::Op::kSum,
                                               mpi::Datatype::kInt64, "mpich");
  });
  // sum over ranks of i*(r+1) = i * N(N+1)/2
  for (int r = 0; r < kProcs; ++r) {
    ASSERT_EQ(hier[static_cast<std::size_t>(r)].size(),
              kElems * sizeof(std::int64_t));
    EXPECT_EQ(hier[static_cast<std::size_t>(r)],
              mpich[static_cast<std::size_t>(r)])
        << "rank " << r;
    std::int64_t first_sum = 0;
    std::memcpy(&first_sum,
                hier[static_cast<std::size_t>(r)].data() + sizeof(std::int64_t),
                sizeof(std::int64_t));
    EXPECT_EQ(first_sum, kProcs * (kProcs + 1) / 2) << "rank " << r;
  }
}

// Non-commutative custom op: 2x2 int64 matrix product (inout = in · inout,
// `in` the lower-ranked partial) — the hierarchy's leader combine must
// preserve comm rank order across segment partials.
using Mat = std::array<std::int64_t, 4>;

Mat matmul(const Mat& a, const Mat& b) {
  return {a[0] * b[0] + a[1] * b[2], a[0] * b[1] + a[1] * b[3],
          a[2] * b[0] + a[3] * b[2], a[2] * b[1] + a[3] * b[3]};
}

void matrix_product_op(mpi::Datatype type, std::span<const std::uint8_t> in,
                       std::span<std::uint8_t> inout, std::size_t count) {
  MC_ASSERT(type == mpi::Datatype::kInt64);
  MC_ASSERT(count % 4 == 0);
  for (std::size_t g = 0; g < count / 4; ++g) {
    Mat a;
    Mat b;
    std::memcpy(a.data(), in.data() + g * sizeof(Mat), sizeof(Mat));
    std::memcpy(b.data(), inout.data() + g * sizeof(Mat), sizeof(Mat));
    const Mat r = matmul(a, b);
    std::memcpy(inout.data() + g * sizeof(Mat), r.data(), sizeof(Mat));
  }
}

Mat rank_matrix(int rank) { return {1, rank + 1, 0, 2}; }

TEST(HierAllreduce, NonCommutativeOpCombinesInRankOrder) {
  constexpr int kProcs = 7;  // ragged 3/2/2 blocks
  const mpi::CustomOpGuard guard(matrix_product_op, /*group_elements=*/4);
  Cluster cluster(config_for(kProcs, 3));
  std::vector<Buffer> results(kProcs);
  cluster.world().run([&](mpi::Proc& p) {
    const Mat mine = rank_matrix(p.rank());
    Buffer bytes(sizeof mine);
    std::memcpy(bytes.data(), mine.data(), sizeof mine);
    results[static_cast<std::size_t>(p.rank())] =
        p.comm_world().coll().allreduce(bytes, mpi::Op::kCustom,
                                        mpi::Datatype::kInt64, "hier");
  });
  Mat expected = rank_matrix(0);
  for (int r = 1; r < kProcs; ++r) {
    expected = matmul(expected, rank_matrix(r));
  }
  Buffer want(sizeof expected);
  std::memcpy(want.data(), expected.data(), sizeof expected);
  for (int r = 0; r < kProcs; ++r) {
    EXPECT_EQ(results[static_cast<std::size_t>(r)], want)
        << "rank " << r << ": M_0 · ... · M_6 must be combined left to right";
  }
}

// -------------------------------------------------------------- allgather

TEST(HierAllgather, RaggedBlockSizesRoundTrip) {
  constexpr int kProcs = 7;
  Cluster cluster(config_for(kProcs, 3));
  auto block_size = [](int rank) {
    return static_cast<std::size_t>((rank * 137) % 500);  // rank 0: empty
  };
  std::vector<int> ok(kProcs, 0);
  cluster.world().run([&](mpi::Proc& p) {
    const Buffer mine = pattern_payload(static_cast<std::uint64_t>(p.rank()),
                                        block_size(p.rank()));
    const auto blocks = p.comm_world().coll().allgather(mine, "hier");
    bool good = blocks.size() == static_cast<std::size_t>(kProcs);
    for (int r = 0; good && r < kProcs; ++r) {
      const Buffer& b = blocks[static_cast<std::size_t>(r)];
      good = b.size() == block_size(r) &&
             check_pattern(static_cast<std::uint64_t>(r), b);
    }
    ok[static_cast<std::size_t>(p.rank())] = good;
  });
  for (int r = 0; r < kProcs; ++r) {
    EXPECT_TRUE(ok[static_cast<std::size_t>(r)]) << "rank " << r;
  }
}

TEST(HierAllgather, EachBlockCrossesEachTrunkOnce) {
  // 6 ranks on 2 segments: each leader's bundle (3 small blocks, one
  // frame) crosses the single trunk exactly once in each direction.  The
  // blocks are small enough that the intra phases stay on point-to-point —
  // local unicast never reaches the bridge, so the trunk counter isolates
  // the leader exchange (intra multicast would flood across the bridge).
  constexpr int kProcs = 6;
  constexpr std::size_t kBlock = 200;
  Cluster cluster(config_for(kProcs, 2));
  auto op = [](mpi::Proc& p) {
    const Buffer mine =
        pattern_payload(static_cast<std::uint64_t>(p.rank()), kBlock);
    (void)p.comm_world().coll().allgather(mine, "hier");
  };
  cluster.world().run([&](mpi::Proc& p) { op(p); });  // warm the split
  const std::uint64_t before = cluster.bridges().front()->forwarded_frames();
  cluster.world().run([&](mpi::Proc& p) { op(p); });
  const std::uint64_t after = cluster.bridges().front()->forwarded_frames();
  // One bundle datagram per direction plus transport acknowledgements;
  // per-rank trunk crossings (a flat algorithm's signature) would push the
  // count past the bound.
  const std::uint64_t forwarded = after - before;
  EXPECT_GE(forwarded, 2u);
  EXPECT_LE(forwarded, 10u)
      << "bundle retransmits or per-rank trunk crossings detected";
}

// ----------------------------------------------------- dup / split comms

TEST(HierComms, DupAndContiguousSplitKeepTheHierarchyWorking)
{
  constexpr int kProcs = 8;  // 2 segments, 4/4
  Cluster cluster(config_for(kProcs, 2));
  std::vector<int> ok(kProcs, 1);
  cluster.world().run([&](mpi::Proc& p) {
    const mpi::Comm world = p.comm_world();
    auto& good = ok[static_cast<std::size_t>(p.rank())];

    // dup: a fresh context builds its own cached HierState.
    const mpi::Comm dup = p.dup(world);
    Buffer data;
    if (p.rank() == 0) {
      data = pattern_payload(7, 3000);
    }
    dup.coll().bcast(data, 0, "hier-mcast");
    good &= check_pattern(7, data) && data.size() == 3000;

    // Even/odd split: comm ranks still group contiguously by segment
    // ({0,2} on segment 0, {4,6} on segment 1), so hier stays applicable.
    const mpi::Comm half = p.split(world, p.rank() % 2, p.rank());
    good &= coll::hier_applicable(half);
    Buffer sub;
    if (half.rank() == 0) {
      sub = pattern_payload(21, 2048);
    }
    half.coll().bcast(sub, 0, "hier-mcast");
    good &= check_pattern(21, sub) && sub.size() == 2048;
  });
  for (int r = 0; r < kProcs; ++r) {
    EXPECT_TRUE(ok[static_cast<std::size_t>(r)]) << "rank " << r;
  }
}

TEST(HierComms, InterleavedSplitIsNonContiguousButBcastStillWorks) {
  constexpr int kProcs = 8;  // 2 segments, 4/4
  Cluster cluster(config_for(kProcs, 2));
  std::vector<int> ok(kProcs, 1);
  bool applicable = false;
  bool contiguous = true;
  std::string auto_pick;
  cluster.world().run([&](mpi::Proc& p) {
    auto& good = ok[static_cast<std::size_t>(p.rank())];
    // Scrambled key: comm rank order interleaves the two segments, so the
    // contiguity predicate must reject allreduce:hier while bcast (which
    // only needs leaders) still delivers.
    const mpi::Comm mixed =
        p.split(p.comm_world(), 0, (p.rank() * 3) % kProcs);
    if (mixed.rank() == 0) {
      applicable = coll::hier_applicable(mixed);
      contiguous = coll::hier_applicable_contiguous(mixed);
      auto_pick = coll::TuningTable::hier_defaults().select(
          coll::CollOp::kAllreduce, 16384, mixed.size(), mixed);
    }
    Buffer data;
    if (mixed.rank() == 2) {
      data = pattern_payload(13, 5000);
    }
    mixed.coll().bcast(data, 2, "hier-mcast");
    good &= check_pattern(13, data) && data.size() == 5000;

    // kAuto allreduce must fall through to a flat algorithm and still be
    // correct on the interleaved comm.
    const std::int64_t mine = mixed.rank() + 1;
    Buffer bytes(sizeof mine);
    std::memcpy(bytes.data(), &mine, sizeof mine);
    const Buffer sum = mixed.coll().allreduce(bytes, mpi::Op::kSum,
                                              mpi::Datatype::kInt64);
    std::int64_t value = 0;
    std::memcpy(&value, sum.data(), sizeof value);
    good &= value == kProcs * (kProcs + 1) / 2;
  });
  EXPECT_TRUE(applicable);
  EXPECT_FALSE(contiguous)
      << "interleaved segment blocks must fail the contiguity predicate";
  EXPECT_NE(auto_pick, "hier")
      << "the tuning table must not pick allreduce:hier on an interleaved comm";
  for (int r = 0; r < kProcs; ++r) {
    EXPECT_TRUE(ok[static_cast<std::size_t>(r)]) << "rank " << r;
  }
}

// ------------------------------------------------------------ lossy trunks

TEST(HierFaults, SurvivesLossyTrunksAndLinks) {
  constexpr int kProcs = 6;
  ClusterConfig config = config_for(kProcs, 3);
  config.faults.trunk.loss = 0.02;
  config.faults.link.loss = 0.01;
  Cluster cluster(config);
  std::vector<int> ok(kProcs, 1);
  cluster.world().run([&](mpi::Proc& p) {
    auto& good = ok[static_cast<std::size_t>(p.rank())];
    for (int rep = 0; rep < 3; ++rep) {
      Buffer data;
      if (p.rank() == 0) {
        data = pattern_payload(static_cast<std::uint64_t>(rep), 8192);
      }
      p.comm_world().coll().bcast(data, 0, "hier-mcast");
      good &= check_pattern(static_cast<std::uint64_t>(rep), data) &&
              data.size() == 8192;
      p.comm_world().coll().barrier("hier");
    }
  });
  for (int r = 0; r < kProcs; ++r) {
    EXPECT_TRUE(ok[static_cast<std::size_t>(r)]) << "rank " << r;
  }
}

// ------------------------------------------------------ tuning integration

TEST(HierTuning, MinSegmentsFieldParsesAndRoundTrips) {
  const auto table = coll::TuningTable::parse(
      "bcast,*,*,hier-mcast,3; barrier,*,*,hier,2; bcast,*,*,mcast-binary");
  ASSERT_EQ(table.rules().size(), 3u);
  EXPECT_EQ(table.rules()[0].min_segments, 3);
  EXPECT_EQ(table.rules()[1].min_segments, 2);
  EXPECT_EQ(table.rules()[2].min_segments, 0);
  EXPECT_EQ(table.to_string(),
            "bcast,*,*,hier-mcast,3; barrier,*,*,hier,2; "
            "bcast,*,*,mcast-binary");
  // `*` in the fifth field means any span.
  EXPECT_EQ(coll::TuningTable::parse("bcast,*,*,mcast-binary,*")
                .rules()[0]
                .min_segments,
            0);
  // The full hier table round-trips through its own string form.
  const auto hier = coll::TuningTable::hier_defaults();
  EXPECT_EQ(coll::TuningTable::parse(hier.to_string()).to_string(),
            hier.to_string());
}

TEST(HierTuning, RejectsMalformedMinSegments) {
  EXPECT_THROW(coll::TuningTable::parse("bcast,*,*,mcast-binary,abc"),
               std::invalid_argument);
  EXPECT_THROW(coll::TuningTable::parse("bcast,*,*,mcast-binary,2,9"),
               std::invalid_argument);
  EXPECT_THROW(coll::TuningTable::parse("bcast,*,*,no-such-algo,2"),
               std::invalid_argument);
}

TEST(HierTuning, HierDefaultsPickHierOnlyAcrossSegments) {
  // 2 segments of 4 ranks: the intra comms are big enough (> 2 ranks)
  // that the classic table's multicast rules apply inside a segment.
  Cluster cluster(config_for(8, 2));
  const auto table = coll::TuningTable::hier_defaults();
  std::string big_bcast;
  std::string tiny_bcast;
  std::string barrier;
  std::string allgather;
  std::string intra_bcast;
  cluster.world().run([&](mpi::Proc& p) {
    const mpi::Comm world = p.comm_world();
    const coll::HierState& st = coll::hier_state(p, world);
    if (p.rank() == 0) {
      big_bcast =
          table.select(coll::CollOp::kBcast, 16384, world.size(), world);
      tiny_bcast =
          table.select(coll::CollOp::kBcast, 256, world.size(), world);
      barrier = table.select(coll::CollOp::kBarrier, 0, world.size(), world);
      allgather =
          table.select(coll::CollOp::kAllgather, 16384, world.size(), world);
      intra_bcast = table.select(coll::CollOp::kBcast, 16384,
                                 st.intra.size(), st.intra);
    }
  });
  EXPECT_EQ(big_bcast, "hier-mcast");
  EXPECT_EQ(tiny_bcast, "mpich")
      << "small payloads must stay on point-to-point";
  EXPECT_EQ(barrier, "hier");
  EXPECT_EQ(allgather, "hier");
  EXPECT_EQ(intra_bcast, "mcast-binary")
      << "the intra comm spans one segment: classic rules apply";
}

TEST(HierTuning, HierDefaultsOnSingleSegmentMatchClassicDefaults) {
  Cluster cluster(config_for(4, 1));
  const auto hier = coll::TuningTable::hier_defaults();
  const auto classic = coll::TuningTable::defaults();
  bool all_equal = true;
  cluster.world().run([&](mpi::Proc& p) {
    const mpi::Comm world = p.comm_world();
    if (p.rank() != 0) {
      return;
    }
    for (const coll::CollOp op :
         {coll::CollOp::kBcast, coll::CollOp::kBarrier,
          coll::CollOp::kAllreduce, coll::CollOp::kAllgather}) {
      for (const std::size_t bytes : {std::size_t{256}, std::size_t{16384}}) {
        all_equal &= hier.select(op, bytes, world.size(), world) ==
                     classic.select(op, bytes, world.size(), world);
      }
    }
  });
  EXPECT_TRUE(all_equal)
      << "every min_segments gate must fail on a single segment";
}

TEST(HierTuning, InstalledViaClusterConfigDrivesKAuto) {
  constexpr int kProcs = 8;
  ClusterConfig config = config_for(kProcs, 4);
  config.coll_tuning = coll::TuningTable::hier_defaults().to_string();
  Cluster cluster(config);
  std::vector<int> ok(kProcs, 1);
  cluster.world().run([&](mpi::Proc& p) {
    auto& good = ok[static_cast<std::size_t>(p.rank())];
    const mpi::Comm world = p.comm_world();
    // All kAuto: bcast and allgather resolve to the hier algorithms (the
    // selection itself is covered above); results must be exact.  Under
    // kAuto every rank presents the agreed payload size (selection keys on
    // the local count, like MPI's matching-count rule).
    Buffer data(16384);
    if (p.rank() == 0) {
      data = pattern_payload(3, 16384);
    }
    world.coll().bcast(data, 0);
    good &= check_pattern(3, data) && data.size() == 16384;

    world.coll().barrier();

    const Buffer mine =
        pattern_payload(static_cast<std::uint64_t>(p.rank()), 4096);
    const auto blocks = world.coll().allgather(mine);
    good &= blocks.size() == static_cast<std::size_t>(kProcs);
    for (int r = 0; good && r < kProcs; ++r) {
      good &= check_pattern(static_cast<std::uint64_t>(r),
                            blocks[static_cast<std::size_t>(r)]);
    }

    std::vector<std::int64_t> values(512);
    std::iota(values.begin(), values.end(), p.rank());
    Buffer bytes(values.size() * sizeof(std::int64_t));
    std::memcpy(bytes.data(), values.data(), bytes.size());
    const Buffer sum =
        world.coll().allreduce(bytes, mpi::Op::kSum, mpi::Datatype::kInt64);
    std::int64_t first = 0;
    std::memcpy(&first, sum.data(), sizeof first);
    good &= first == kProcs * (kProcs - 1) / 2;  // sum of ranks
  });
  for (int r = 0; r < kProcs; ++r) {
    EXPECT_TRUE(ok[static_cast<std::size_t>(r)]) << "rank " << r;
  }
}

// ----------------------------------------------- per-pair trunk latencies

TEST(HierTrunks, PerPairLatencyShapesPointToPointTiming) {
  // 3 segments, 2 ranks each; the 0<->2 trunk is 10x slower than 0<->1.
  ClusterConfig config = config_for(6, 3);
  config.trunk_latency_of = [](int a, int b) {
    if (a == 0 && b == 1) {
      return microseconds(30);
    }
    if (a == 0 && b == 2) {
      return microseconds(300);
    }
    return SimTime{};  // (1,2): fall back to the uniform default
  };
  Cluster cluster(config);
  EXPECT_EQ(cluster.trunk_latency(0, 1), microseconds(30));
  EXPECT_EQ(cluster.trunk_latency(2, 0), microseconds(300));
  EXPECT_EQ(cluster.trunk_latency(1, 2), config.trunk_latency);

  SimTime near_rtt{};
  SimTime far_rtt{};
  cluster.world().run([&](mpi::Proc& p) {
    const mpi::Comm world = p.comm_world();
    const Buffer ping = pattern_payload(1, 64);
    if (p.rank() == 0) {
      SimTime t0 = p.self().now();
      p.send(world, 2, 1, ping);  // segment 0 -> 1
      (void)p.recv(world, 2, 2);
      near_rtt = p.self().now() - t0;
      t0 = p.self().now();
      p.send(world, 4, 1, ping);  // segment 0 -> 2
      (void)p.recv(world, 4, 2);
      far_rtt = p.self().now() - t0;
    } else if (p.rank() == 2 || p.rank() == 4) {
      const Buffer got = p.recv(world, 0, 1);
      p.send(world, 0, 2, got);
    }
  });
  // Two extra trunk crossings of +270us each dominate everything else.
  EXPECT_GT(far_rtt.count(), near_rtt.count() + microseconds(400).count())
      << "the slow trunk's latency must show up in the round trip";
}

}  // namespace
}  // namespace mcmpi
