// Contended cross-shard inbox stress.
//
// The lock-free MPSC inbox (sim/simulator.cpp) replaces the old
// mutex-guarded vector on the cross-shard hot path.  Its contract: however
// many senders push concurrently, and in whatever physical order their CAS
// pushes land, the receiving shard executes the delivered events in keyed
// order — (time, OrderKey) — exactly as the serial reference driver does.
// These tests drive many concurrent senders at one receiver shard (well
// past the node-cache capacity, so recycling is exercised too) and assert
// the executed sequence is bit-identical to the serial driver's.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "sim/simulator.hpp"

namespace mcmpi::sim {
namespace {

using Order = std::vector<std::pair<unsigned, int>>;

constexpr unsigned kShards = 4;
constexpr SimTime kLookahead = microseconds(10);

/// Three sender shards flood shard 0 with cross-shard deliveries while
/// shard 0 also schedules local events at overlapping times.  Returns the
/// sequence in which shard 0 executed them (only shard-0 events append, so
/// the vector needs no synchronization).
Order run_contended(ShardDriver driver, int per_sender) {
  Order order;
  Simulator sim(/*seed=*/11, default_execution_backend(),
                ShardingConfig{kShards, kLookahead, driver});

  for (unsigned s = 1; s < kShards; ++s) {
    sim.spawn_on(s, "sender-" + std::to_string(s),
                 [&sim, &order, s, per_sender](SimProcess& self) {
                   for (int i = 0; i < per_sender; ++i) {
                     // Deliberately colliding timestamps: several senders
                     // hit the same virtual instant, so execution order on
                     // shard 0 is decided purely by the deterministic
                     // (shard, seq) ordering key, never by CAS arrival.
                     const SimTime t =
                         self.now() + kLookahead + microseconds(i % 3);
                     sim.schedule_cross(
                         0, t, [&order, s, i] { order.emplace_back(s, i); });
                     self.delay(microseconds(1));
                   }
                 });
  }
  sim.spawn_on(0, "local", [&sim, &order, per_sender](SimProcess& self) {
    for (int i = 0; i < per_sender; ++i) {
      sim.schedule_at(self.now() + kLookahead,
                      [&order, i] { order.emplace_back(0u, i); });
      self.delay(microseconds(1));
    }
  });

  sim.run();
  return order;
}

TEST(InboxStressTest, ContendedDrainMatchesKeyedSerialOrder) {
  // 400 deliveries per sender: far beyond the receiver's 256-node recycle
  // cache, so the pushes mix fresh allocations with recycled nodes.
  const Order serial = run_contended(ShardDriver::kSerial, 400);
  const Order parallel = run_contended(ShardDriver::kParallel, 400);
  ASSERT_EQ(serial.size(),
            static_cast<std::size_t>(400 * static_cast<int>(kShards)));
  EXPECT_EQ(serial, parallel);
}

TEST(InboxStressTest, RepeatedRunsAreStable) {
  // The parallel drain must be deterministic run-to-run, not merely equal
  // to serial once: physical push interleavings vary per run, the executed
  // order must not.
  const Order first = run_contended(ShardDriver::kParallel, 150);
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(first, run_contended(ShardDriver::kParallel, 150));
  }
}

TEST(InboxStressTest, SameInstantDeliveriesOrderBySenderKey) {
  // Every sender targets the SAME absolute instant on shard 0.  The keyed
  // contract then demands execution ordered by (sender shard, send seq).
  auto run = [](ShardDriver driver) {
    Order order;
    Simulator sim(/*seed=*/5, default_execution_backend(),
                  ShardingConfig{kShards, kLookahead, driver});
    const SimTime target = kLookahead * 5;
    for (unsigned s = 1; s < kShards; ++s) {
      sim.spawn_on(s, "sender-" + std::to_string(s),
                   [&sim, &order, s, target](SimProcess&) {
                     for (int i = 0; i < 64; ++i) {
                       sim.schedule_cross(0, target, [&order, s, i] {
                         order.emplace_back(s, i);
                       });
                     }
                   });
    }
    sim.run();
    return order;
  };
  const Order serial = run(ShardDriver::kSerial);
  const Order parallel = run(ShardDriver::kParallel);
  EXPECT_EQ(serial, parallel);
  // Within one sender the sends keep their issue order.
  for (unsigned s = 1; s < kShards; ++s) {
    int expected = 0;
    for (const auto& [shard, i] : serial) {
      if (shard == s) {
        EXPECT_EQ(i, expected++);
      }
    }
    EXPECT_EQ(expected, 64);
  }
}

}  // namespace
}  // namespace mcmpi::sim
