// Unit tests for the IP/UDP/RDP stack: addressing, fragmentation and
// reassembly (including loss), UDP drop semantics (the paper's
// unreliability model), IGMP membership and reliable-transport recovery.
#include <gtest/gtest.h>

#include <iterator>
#include <span>

#include "inet/ip.hpp"
#include "inet/ip_addr.hpp"
#include "net/fault.hpp"
#include "inet/rdp.hpp"
#include "inet/udp.hpp"
#include "net/hub.hpp"
#include "net/switch.hpp"
#include "sim/simulator.hpp"

namespace mcmpi::inet {
namespace {

// --------------------------------------------------------------- ip_addr

TEST(IpAddr, ClassDDetection) {
  EXPECT_TRUE(IpAddr(224, 0, 0, 0).is_multicast());
  EXPECT_TRUE(IpAddr(239, 255, 255, 255).is_multicast());
  EXPECT_FALSE(IpAddr(223, 255, 255, 255).is_multicast());
  EXPECT_FALSE(IpAddr(240, 0, 0, 0).is_multicast());
  EXPECT_FALSE(IpAddr::host(0).is_multicast());
  EXPECT_TRUE(IpAddr::multicast_group(7).is_multicast());
}

TEST(IpAddr, ParseAndPrintRoundTrip) {
  for (const char* text : {"10.0.0.1", "239.1.2.3", "0.0.0.0",
                           "255.255.255.255"}) {
    EXPECT_EQ(IpAddr::parse(text).to_string(), text);
  }
}

TEST(IpAddr, ParseRejectsMalformed) {
  for (const char* text : {"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d",
                           "1..2.3", "1.2.3.4x"}) {
    EXPECT_THROW((void)IpAddr::parse(text), std::invalid_argument) << text;
  }
}

// ------------------------------------------------------- fixture: 2 hosts

struct StackFixture {
  sim::Simulator sim{3};
  net::Switch network{sim};
  ArpTable arp;
  struct HostStack {
    std::unique_ptr<net::Nic> nic;
    std::unique_ptr<IpStack> ip;
    std::unique_ptr<UdpStack> udp;
  };
  std::vector<HostStack> hosts;

  explicit StackFixture(int n, bool use_hub = false) {
    (void)use_hub;
    for (int i = 0; i < n; ++i) {
      arp.add(IpAddr::host(static_cast<std::uint32_t>(i)),
              net::MacAddr::host(static_cast<std::uint32_t>(i)));
    }
    for (int i = 0; i < n; ++i) {
      HostStack h;
      h.nic = std::make_unique<net::Nic>(
          sim, net::MacAddr::host(static_cast<std::uint32_t>(i)),
          "host" + std::to_string(i));
      h.nic->attach_to(network);
      h.ip = std::make_unique<IpStack>(
          sim, *h.nic, IpAddr::host(static_cast<std::uint32_t>(i)), arp);
      h.udp = std::make_unique<UdpStack>(*h.ip);
      hosts.push_back(std::move(h));
    }
  }
};

// -------------------------------------------------------- fragmentation

TEST(IpFragmentation, LargeDatagramRoundTrips) {
  StackFixture fx(2);
  Buffer received;
  fx.hosts[1].ip->register_protocol(
      99, [&](const IpPacketMeta&, PayloadRef data) { received = data.to_buffer(); });
  const Buffer payload = pattern_payload(1, 10'000);
  fx.hosts[0].ip->send(IpAddr::host(1), 99, PayloadRef(payload), net::FrameKind::kData);
  fx.sim.run();
  EXPECT_EQ(received.size(), 10'000u);
  EXPECT_TRUE(check_pattern(1, received));
  // ceil(10000 / 1480) = 7 fragments.
  EXPECT_EQ(fx.hosts[0].ip->stats().fragments_sent, 7u);
  EXPECT_EQ(fx.hosts[1].ip->stats().datagrams_received, 1u);
}

TEST(IpFragmentation, ExactSingleFrameIsNotFragmented) {
  StackFixture fx(2);
  int datagrams = 0;
  fx.hosts[1].ip->register_protocol(
      99, [&](const IpPacketMeta&, PayloadRef) { ++datagrams; });
  fx.hosts[0].ip->send(IpAddr::host(1), 99,
                       PayloadRef(pattern_payload(2, 1480)), net::FrameKind::kData);
  fx.sim.run();
  EXPECT_EQ(fx.hosts[0].ip->stats().fragments_sent, 1u);
  EXPECT_EQ(datagrams, 1);
}

TEST(IpFragmentation, ZeroBytePayloadWorks) {
  StackFixture fx(2);
  bool got = false;
  fx.hosts[1].ip->register_protocol(99, [&](const IpPacketMeta&, PayloadRef data) {
    got = true;
    EXPECT_TRUE(data.empty());
  });
  fx.hosts[0].ip->send(IpAddr::host(1), 99, PayloadRef{}, net::FrameKind::kControl);
  fx.sim.run();
  EXPECT_TRUE(got);
}

TEST(IpFragmentation, LostFragmentTimesOutAndDiscards) {
  StackFixture fx(2);
  int datagrams = 0;
  fx.hosts[1].ip->register_protocol(
      99, [&](const IpPacketMeta&, PayloadRef) { ++datagrams; });
  // Drop the second fragment of the first datagram (offset units 185).
  int fragment_count = 0;
  fx.network.set_drop_hook([&](const net::Frame&, const net::Nic&) {
    return ++fragment_count == 2;
  });
  fx.hosts[0].ip->send(IpAddr::host(1), 99, PayloadRef(pattern_payload(1, 3000)),
                       net::FrameKind::kData);
  fx.sim.run();  // drains the reassembly timeout too
  EXPECT_EQ(datagrams, 0);
  EXPECT_EQ(fx.hosts[1].ip->stats().reassembly_timeouts, 1u);

  // A later datagram is unaffected.
  fx.network.set_drop_hook(nullptr);
  fx.hosts[0].ip->send(IpAddr::host(1), 99, PayloadRef(pattern_payload(2, 3000)),
                       net::FrameKind::kData);
  fx.sim.run();
  EXPECT_EQ(datagrams, 1);
}

TEST(IpFragmentation, InterleavedSendersReassembleIndependently) {
  StackFixture fx(3);
  std::vector<Buffer> received;
  fx.hosts[2].ip->register_protocol(99, [&](const IpPacketMeta&, PayloadRef d) {
    received.push_back(d.to_buffer());
  });
  fx.hosts[0].ip->send(IpAddr::host(2), 99, PayloadRef(pattern_payload(10, 4000)),
                       net::FrameKind::kData);
  fx.hosts[1].ip->send(IpAddr::host(2), 99, PayloadRef(pattern_payload(11, 4000)),
                       net::FrameKind::kData);
  fx.sim.run();
  ASSERT_EQ(received.size(), 2u);
  // Either order; identify by pattern.
  const bool first_is_10 = check_pattern(10, received[0]);
  EXPECT_TRUE(check_pattern(first_is_10 ? 11 : 10, received[1]));
}

TEST(IpFragmentation, DuplicatedFragmentsNeverSeedGhostReassembly) {
  StackFixture fx(2);
  // Duplicate every frame on the wire: repeats of fragments still inside
  // reassembly AND late repeats of already-completed datagrams.
  net::fault::FaultPlane plane{net::fault::FaultProfile{.duplicate = 1.0},
                               net::fault::FaultProfile{}, 42};
  fx.network.set_fault_plane(&plane);
  int datagrams = 0;
  fx.hosts[1].ip->register_protocol(
      99, [&](const IpPacketMeta&, PayloadRef) { ++datagrams; });

  fx.hosts[0].ip->send(IpAddr::host(1), 99, PayloadRef(pattern_payload(1, 3000)),
                       net::FrameKind::kData);
  fx.sim.run();
  // 3 fragments, each delivered twice.  The duplicate of the final
  // fragment arrives AFTER the datagram completed; without completed-key
  // tracking it would seed a ghost reassembly entry that only a timeout
  // could clear (and that could corrupt a later datagram reusing the
  // ident).  All three repeats must be recognized and dropped.
  EXPECT_EQ(datagrams, 1);
  EXPECT_EQ(fx.hosts[1].ip->stats().duplicate_fragments, 3u);
  EXPECT_EQ(fx.hosts[1].ip->stats().reassembly_timeouts, 0u);

  // Later fragmented datagrams are unaffected by the retained keys.
  fx.hosts[0].ip->send(IpAddr::host(1), 99, PayloadRef(pattern_payload(2, 3000)),
                       net::FrameKind::kData);
  fx.sim.run();
  EXPECT_EQ(datagrams, 2);
  EXPECT_EQ(fx.hosts[1].ip->stats().reassembly_timeouts, 0u);

  // Duplicate UNFRAGMENTED datagrams are delivered twice, like real IP:
  // dedup is the transport's job (RDP / multicast sequence numbers).
  fx.hosts[0].ip->send(IpAddr::host(1), 99, PayloadRef(pattern_payload(3, 100)),
                       net::FrameKind::kData);
  fx.sim.run();
  EXPECT_EQ(datagrams, 4);
}

// ------------------------------------------------------------------- UDP

TEST(Udp, UnicastDelivery) {
  StackFixture fx(2);
  auto rx = fx.hosts[1].udp->open(7000);
  auto tx = fx.hosts[0].udp->open(0);
  tx->sendto(IpAddr::host(1), 7000, PayloadRef(pattern_payload(3, 100)));
  fx.sim.run();
  auto got = rx->try_recv();
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(check_pattern(3, got->data));
  EXPECT_EQ(got->src_addr, IpAddr::host(0));
  EXPECT_EQ(got->dst_port, 7000);
}

TEST(Udp, NoSocketMeansSilentDrop) {
  StackFixture fx(2);
  auto tx = fx.hosts[0].udp->open(0);
  tx->sendto(IpAddr::host(1), 7001, PayloadRef(pattern_payload(1, 10)));
  fx.sim.run();
  EXPECT_EQ(fx.hosts[1].udp->stats().no_socket_drops, 1u);
}

TEST(Udp, MulticastOnlyReachesJoinedSockets) {
  StackFixture fx(3);
  const IpAddr group = IpAddr::multicast_group(5);
  auto joined = fx.hosts[1].udp->open(7002);
  joined->join(group);
  auto not_joined = fx.hosts[2].udp->open(7002);  // same port, no join

  auto tx = fx.hosts[0].udp->open(0);
  tx->sendto(group, 7002, PayloadRef(pattern_payload(4, 64)));
  fx.sim.run();
  EXPECT_TRUE(joined->try_recv().has_value());
  EXPECT_FALSE(not_joined->try_recv().has_value());
}

TEST(Udp, LeaveStopsDelivery) {
  StackFixture fx(2);
  const IpAddr group = IpAddr::multicast_group(6);
  auto rx = fx.hosts[1].udp->open(7003);
  rx->join(group);
  auto tx = fx.hosts[0].udp->open(0);
  tx->sendto(group, 7003, PayloadRef(pattern_payload(1, 8)));
  fx.sim.run();
  EXPECT_TRUE(rx->try_recv().has_value());

  rx->leave(group);
  tx->sendto(group, 7003, PayloadRef(pattern_payload(1, 8)));
  fx.sim.run();
  EXPECT_FALSE(rx->try_recv().has_value());
}

TEST(Udp, ReceiverOverrunDropsWhenBufferFull) {
  // The paper's third unreliability problem: a slow receiver overrun by a
  // fast sender loses datagrams once its socket buffer fills.
  StackFixture fx(2);
  auto rx = fx.hosts[1].udp->open(7004);
  rx->set_recv_buffer(3000);  // room for ~2 x 1400B datagrams
  auto tx = fx.hosts[0].udp->open(0);
  for (int i = 0; i < 5; ++i) {
    tx->sendto(IpAddr::host(1), 7004, PayloadRef(pattern_payload(1, 1400)));
  }
  fx.sim.run();
  EXPECT_EQ(rx->queued_datagrams(), 2u);
  EXPECT_EQ(rx->dropped_on_full(), 3u);
  EXPECT_EQ(fx.hosts[1].udp->stats().buffer_full_drops, 3u);
}

TEST(Udp, JumboDatagramLengthSurvivesThe16BitWireField) {
  // The wire header's 16-bit length field wraps past 64 KiB.  The stack
  // writes the 0 jumbogram marker instead and recovers the true size from
  // the datagram itself — the wrapped value is never read back.  Probe
  // the boundary exactly: totals of 65535 (max representable), 65536 and
  // 65537 bytes (payload + 8 B header), then a multi-fragment jumbo.
  const std::size_t payloads[] = {65527, 65528, 65529, 300000};
  const std::uint64_t expect_jumbo[] = {0, 1, 1, 1};
  for (std::size_t i = 0; i < std::size(payloads); ++i) {
    StackFixture fx(2);
    auto rx = fx.hosts[1].udp->open(7010);
    rx->set_recv_buffer(1 << 20);
    auto tx = fx.hosts[0].udp->open(0);
    tx->sendto(IpAddr::host(1), 7010,
               PayloadRef(pattern_payload(5, payloads[i])));
    fx.sim.run();
    EXPECT_EQ(fx.hosts[0].udp->stats().jumbo_datagrams, expect_jumbo[i])
        << "payload " << payloads[i];
    auto got = rx->try_recv();
    ASSERT_TRUE(got.has_value()) << "payload " << payloads[i];
    EXPECT_EQ(got->data.size(), payloads[i]);
    EXPECT_TRUE(check_pattern(5, got->data)) << "payload " << payloads[i];
  }
}

TEST(Udp, GatherSendConcatenatesPartsIntoOneDatagram) {
  // sendto_parts frames a scattered logical payload [a ‖ b ‖ c] into a
  // single wire datagram without the caller assembling it first — the
  // segmented collectives' zero-copy send path.
  StackFixture fx(2);
  auto rx = fx.hosts[1].udp->open(7011);
  auto tx = fx.hosts[0].udp->open(0);
  const Buffer whole = pattern_payload(6, 5000);
  const std::span<const std::uint8_t> all(whole);
  const std::span<const std::uint8_t> parts[] = {
      all.subspan(0, 100), all.subspan(100, 3000), all.subspan(3100)};
  tx->sendto_parts(IpAddr::host(1), 7011, parts);
  fx.sim.run();
  EXPECT_EQ(fx.hosts[0].udp->stats().datagrams_sent, 1u);
  auto got = rx->try_recv();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->data.size(), 5000u);
  EXPECT_TRUE(check_pattern(6, got->data));
}

TEST(Udp, BlockingRecvWakesOnArrival) {
  StackFixture fx(2);
  auto rx = fx.hosts[1].udp->open(7005);
  auto tx = fx.hosts[0].udp->open(0);
  bool got = false;
  fx.sim.spawn("receiver", [&](sim::SimProcess& self) {
    const UdpDatagram d = rx->recv(self);
    got = check_pattern(9, d.data);
  });
  fx.sim.schedule_at(microseconds(500), [&] {
    tx->sendto(IpAddr::host(1), 7005, PayloadRef(pattern_payload(9, 256)));
  });
  fx.sim.run();
  EXPECT_TRUE(got);
}

TEST(Udp, RecvUntilTimesOutCleanly) {
  StackFixture fx(2);
  auto rx = fx.hosts[1].udp->open(7006);
  bool timed_out = false;
  fx.sim.spawn("receiver", [&](sim::SimProcess& self) {
    timed_out = !rx->recv_until(self, microseconds(200)).has_value();
  });
  fx.sim.run();
  EXPECT_TRUE(timed_out);
}

TEST(Udp, EphemeralPortsAreUnique) {
  StackFixture fx(1);
  auto a = fx.hosts[0].udp->open(0);
  auto b = fx.hosts[0].udp->open(0);
  EXPECT_NE(a->port(), b->port());
  EXPECT_GE(a->port(), 49152);
}

TEST(Udp, SocketUnregistersOnDestruction) {
  StackFixture fx(2);
  {
    auto rx = fx.hosts[1].udp->open(7007);
  }
  auto tx = fx.hosts[0].udp->open(0);
  tx->sendto(IpAddr::host(1), 7007, PayloadRef(pattern_payload(1, 10)));
  fx.sim.run();
  EXPECT_EQ(fx.hosts[1].udp->stats().no_socket_drops, 1u);
}

TEST(Udp, HandlerModeDispatchesImmediately) {
  StackFixture fx(2);
  auto rx = fx.hosts[1].udp->open(7010);
  std::vector<std::size_t> seen;
  rx->set_handler([&](UdpDatagram d) { seen.push_back(d.data.size()); });
  auto tx = fx.hosts[0].udp->open(0);
  tx->sendto(IpAddr::host(1), 7010, PayloadRef(pattern_payload(1, 100)));
  tx->sendto(IpAddr::host(1), 7010, PayloadRef(pattern_payload(2, 200)));
  fx.sim.run();
  EXPECT_EQ(seen, (std::vector<std::size_t>{100, 200}));
  EXPECT_EQ(rx->queued_datagrams(), 0u) << "handler mode never buffers";
}

TEST(Udp, HandlerModeIgnoresBufferLimit) {
  StackFixture fx(2);
  auto rx = fx.hosts[1].udp->open(7011);
  rx->set_recv_buffer(10);  // absurdly small
  int count = 0;
  rx->set_handler([&](UdpDatagram) { ++count; });
  auto tx = fx.hosts[0].udp->open(0);
  for (int i = 0; i < 5; ++i) {
    tx->sendto(IpAddr::host(1), 7011, PayloadRef(pattern_payload(1, 1000)));
  }
  fx.sim.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(rx->dropped_on_full(), 0u);
}

TEST(Udp, TwoJoinedSocketsOnOnePortBothReceive) {
  StackFixture fx(2);
  const IpAddr group = IpAddr::multicast_group(9);
  auto a = fx.hosts[1].udp->open(7012);
  auto b = fx.hosts[1].udp->open(7012);
  a->join(group);
  b->join(group);
  auto tx = fx.hosts[0].udp->open(0);
  tx->sendto(group, 7012, PayloadRef(pattern_payload(4, 32)));
  fx.sim.run();
  EXPECT_TRUE(a->try_recv().has_value());
  EXPECT_TRUE(b->try_recv().has_value());
}

TEST(Udp, MulticastSelfDeliveryRequiresNetworkLoop) {
  // The network models do not loop multicast back to the sender's NIC, so
  // a sender that joined its own group does NOT hear itself (the root of a
  // broadcast never consumes its own frame).
  StackFixture fx(2);
  const IpAddr group = IpAddr::multicast_group(10);
  auto sender = fx.hosts[0].udp->open(7013);
  sender->join(group);
  sender->sendto(group, 7013, PayloadRef(pattern_payload(1, 16)));
  fx.sim.run();
  EXPECT_FALSE(sender->try_recv().has_value());
}

// ------------------------------------------------------------------- RDP

struct RdpFixture : StackFixture {
  std::unique_ptr<RdpEndpoint> a;
  std::unique_ptr<RdpEndpoint> b;
  std::vector<std::pair<IpAddr, Buffer>> a_received;
  std::vector<std::pair<IpAddr, Buffer>> b_received;

  RdpFixture() : StackFixture(2) {
    a = std::make_unique<RdpEndpoint>(*hosts[0].udp);
    b = std::make_unique<RdpEndpoint>(*hosts[1].udp);
    a->set_message_handler([this](IpAddr src, PayloadRef m) {
      a_received.emplace_back(src, m.to_buffer());
    });
    b->set_message_handler([this](IpAddr src, PayloadRef m) {
      b_received.emplace_back(src, m.to_buffer());
    });
  }
};

TEST(Rdp, SmallMessageRoundTrip) {
  RdpFixture fx;
  fx.a->send(IpAddr::host(1), PayloadRef(pattern_payload(1, 100)));
  fx.sim.run();
  ASSERT_EQ(fx.b_received.size(), 1u);
  EXPECT_TRUE(check_pattern(1, fx.b_received[0].second));
  EXPECT_EQ(fx.b_received[0].first, IpAddr::host(0));
  EXPECT_EQ(fx.a->stats().retransmits, 0u);
}

TEST(Rdp, EmptyMessageDelivered) {
  RdpFixture fx;
  fx.a->send(IpAddr::host(1), PayloadRef{});
  fx.sim.run();
  ASSERT_EQ(fx.b_received.size(), 1u);
  EXPECT_TRUE(fx.b_received[0].second.empty());
}

TEST(Rdp, LargeMessageSegmentsAndReassembles) {
  RdpFixture fx;
  fx.a->send(IpAddr::host(1), PayloadRef(pattern_payload(2, 100'000)));
  fx.sim.run();
  ASSERT_EQ(fx.b_received.size(), 1u);
  EXPECT_EQ(fx.b_received[0].second.size(), 100'000u);
  EXPECT_TRUE(check_pattern(2, fx.b_received[0].second));
  // ceil(100000/1456) = 69 segments, more than the 64-segment window:
  // the backlog must have been pumped by ACKs.
  EXPECT_GE(fx.a->stats().segments_sent, 69u);
}

TEST(Rdp, InOrderDeliveryOfManyMessages) {
  RdpFixture fx;
  for (int i = 0; i < 20; ++i) {
    fx.a->send(IpAddr::host(1),
               PayloadRef(pattern_payload(static_cast<std::uint64_t>(i), 500)));
  }
  fx.sim.run();
  ASSERT_EQ(fx.b_received.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(check_pattern(static_cast<std::uint64_t>(i),
                              fx.b_received[static_cast<std::size_t>(i)].second))
        << "message " << i;
  }
}

TEST(Rdp, RecoversFromDataLoss) {
  RdpFixture fx;
  // Drop the first two data frames seen on the wire.
  int data_frames = 0;
  fx.network.set_drop_hook([&](const net::Frame& f, const net::Nic&) {
    if (f.kind == net::FrameKind::kData && data_frames < 2) {
      ++data_frames;
      return true;
    }
    return false;
  });
  fx.a->send(IpAddr::host(1), PayloadRef(pattern_payload(3, 5000)));
  fx.sim.run();
  ASSERT_EQ(fx.b_received.size(), 1u);
  EXPECT_TRUE(check_pattern(3, fx.b_received[0].second));
  EXPECT_GE(fx.a->stats().retransmits, 1u);
}

TEST(Rdp, RecoversFromAckLoss) {
  RdpFixture fx;
  int acks_dropped = 0;
  fx.network.set_drop_hook([&](const net::Frame& f, const net::Nic&) {
    if (f.kind == net::FrameKind::kAck && acks_dropped < 1) {
      ++acks_dropped;
      return true;
    }
    return false;
  });
  fx.a->send(IpAddr::host(1), PayloadRef(pattern_payload(4, 800)));
  fx.sim.run();
  ASSERT_EQ(fx.b_received.size(), 1u);
  // The retransmission triggers a duplicate at the receiver, which re-acks.
  EXPECT_GE(fx.b->stats().duplicates, 1u);
}

TEST(Rdp, BidirectionalTrafficKeepsStreamsSeparate) {
  RdpFixture fx;
  fx.a->send(IpAddr::host(1), PayloadRef(pattern_payload(5, 2000)));
  fx.b->send(IpAddr::host(0), PayloadRef(pattern_payload(6, 2000)));
  fx.sim.run();
  ASSERT_EQ(fx.a_received.size(), 1u);
  ASSERT_EQ(fx.b_received.size(), 1u);
  EXPECT_TRUE(check_pattern(6, fx.a_received[0].second));
  EXPECT_TRUE(check_pattern(5, fx.b_received[0].second));
}

TEST(Rdp, HeavyLossStillConverges) {
  RdpFixture fx;
  // Drop every third data frame, indefinitely.
  int counter = 0;
  fx.network.set_drop_hook([&](const net::Frame& f, const net::Nic&) {
    return f.kind == net::FrameKind::kData && (++counter % 3 == 0);
  });
  for (int i = 0; i < 5; ++i) {
    fx.a->send(IpAddr::host(1),
               PayloadRef(pattern_payload(static_cast<std::uint64_t>(i), 3000)));
  }
  fx.sim.run();
  ASSERT_EQ(fx.b_received.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(check_pattern(static_cast<std::uint64_t>(i),
                              fx.b_received[static_cast<std::size_t>(i)].second));
  }
  EXPECT_EQ(fx.a->stats().send_failures, 0u);
}

}  // namespace
}  // namespace mcmpi::inet
