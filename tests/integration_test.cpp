// Integration tests: end-to-end experiments asserting the *shapes* the
// paper reports — who wins where, crossovers, variance sources and scaling
// — on the full stack (collectives over MPI over UDP/IP over Ethernet
// models, with calibrated costs).
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/experiment.hpp"
#include "coll/facade.hpp"
#include "common/bytes.hpp"

namespace mcmpi {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::ExperimentConfig;
using cluster::NetworkType;

double median_bcast_latency(int procs, NetworkType net,
                            const std::string& algo, int payload,
                            std::uint64_t seed = 17, int reps = 15) {
  ClusterConfig config;
  config.num_procs = procs;
  config.network = net;
  config.seed = seed;
  Cluster cluster(config);
  ExperimentConfig exp;
  exp.reps = reps;
  const auto result = cluster::measure_collective(
      cluster, exp, [&algo, payload](mpi::Proc& p, int) {
        Buffer data;
        if (p.rank() == 0) {
          data = pattern_payload(1, static_cast<std::size_t>(payload));
        }
        p.comm_world().coll().bcast(data, 0, algo);
      });
  return result.latencies_us.median();
}

double median_barrier_latency(int procs, NetworkType net,
                              const std::string& algo,
                              std::uint64_t seed = 17) {
  ClusterConfig config;
  config.num_procs = procs;
  config.network = net;
  config.seed = seed;
  Cluster cluster(config);
  ExperimentConfig exp;
  exp.reps = 15;
  const auto result = cluster::measure_collective(
      cluster, exp,
      [&algo](mpi::Proc& p, int) { p.comm_world().coll().barrier(algo); });
  return result.latencies_us.median();
}

// Fig 7/8: small messages favour MPICH (scout overhead dominates); large
// messages favour multicast (data crosses the wire once).
TEST(PaperShapes, BcastCrossoverOnSwitch4Procs) {
  const double mpich_small = median_bcast_latency(
      4, NetworkType::kSwitch, "mpich", 0);
  const double binary_small = median_bcast_latency(
      4, NetworkType::kSwitch, "mcast-binary", 0);
  EXPECT_LT(mpich_small, binary_small)
      << "at 0 bytes the scouts must cost more than they save";

  const double mpich_large = median_bcast_latency(
      4, NetworkType::kSwitch, "mpich", 5000);
  const double binary_large = median_bcast_latency(
      4, NetworkType::kSwitch, "mcast-binary", 5000);
  const double linear_large = median_bcast_latency(
      4, NetworkType::kSwitch, "mcast-linear", 5000);
  EXPECT_GT(mpich_large, binary_large)
      << "at 5000 bytes multicast must win (Fig. 8)";
  EXPECT_GT(mpich_large, linear_large);
}

TEST(PaperShapes, BcastGapGrowsWithProcessCount) {
  // Fig 9/10: the multicast advantage at 5000 B grows from 4 to 9 procs.
  const double gap4 =
      median_bcast_latency(4, NetworkType::kSwitch,
                           "mpich", 5000) -
      median_bcast_latency(4, NetworkType::kSwitch,
                           "mcast-linear", 5000);
  const double gap9 =
      median_bcast_latency(9, NetworkType::kSwitch,
                           "mpich", 5000) -
      median_bcast_latency(9, NetworkType::kSwitch,
                           "mcast-linear", 5000);
  EXPECT_GT(gap4, 0.0);
  EXPECT_GT(gap9, gap4);
}

// Fig 11: for multicast, the hub (no store-and-forward) beats the switch;
// for MPICH, the hub loses at large sizes (shared medium saturates).
TEST(PaperShapes, HubVersusSwitch) {
  const double mcast_hub = median_bcast_latency(
      4, NetworkType::kHub, "mcast-binary", 3000);
  const double mcast_switch = median_bcast_latency(
      4, NetworkType::kSwitch, "mcast-binary", 3000);
  EXPECT_LT(mcast_hub, mcast_switch)
      << "multicast avoids the switch's store-and-forward latency";

  const double mpich_hub = median_bcast_latency(
      4, NetworkType::kHub, "mpich", 5000);
  const double mpich_switch = median_bcast_latency(
      4, NetworkType::kSwitch, "mpich", 5000);
  EXPECT_GT(mpich_hub, mpich_switch)
      << "MPICH's many copies should saturate the shared medium (Fig. 11)";
}

// Fig 12: with the linear algorithm the cost of adding processes is nearly
// flat in message size, while MPICH's grows with it.
TEST(PaperShapes, LinearScalingIsSizeIndependent) {
  auto extra_cost = [](const std::string& algo, int payload) {
    return median_bcast_latency(9, NetworkType::kSwitch, algo, payload) -
           median_bcast_latency(3, NetworkType::kSwitch, algo, payload);
  };
  const double linear_small = extra_cost("mcast-linear", 0);
  const double linear_large = extra_cost("mcast-linear", 5000);
  const double mpich_small = extra_cost("mpich", 0);
  const double mpich_large = extra_cost("mpich", 5000);

  // MPICH's 3->9 cost grows much more with size than linear-multicast's.
  EXPECT_GT(mpich_large - mpich_small, (linear_large - linear_small) * 2)
      << "extra frames per process should hurt MPICH at 5000 B (Fig. 12)";
}

// Fig 13: multicast barrier beats MPICH, and the gap grows with N.
TEST(PaperShapes, BarrierOnHub) {
  for (int procs : {4, 8, 9}) {
    const double mpich =
        median_barrier_latency(procs, NetworkType::kHub,
                               "mpich");
    const double mcast =
        median_barrier_latency(procs, NetworkType::kHub,
                               "mcast");
    EXPECT_LT(mcast, mpich) << procs << " procs";
  }
  const double gap2 =
      median_barrier_latency(2, NetworkType::kHub, "mpich") -
      median_barrier_latency(2, NetworkType::kHub, "mcast");
  const double gap9 =
      median_barrier_latency(9, NetworkType::kHub, "mpich") -
      median_barrier_latency(9, NetworkType::kHub, "mcast");
  EXPECT_GT(gap9, gap2) << "the barrier gap should grow with N (Fig. 13)";
}

// §4 observation: collisions cause variance on the hub; with 6 procs the
// binary algorithm has two children contending for the root.
TEST(PaperShapes, HubCollisionsProduceVariance) {
  ClusterConfig config;
  config.num_procs = 6;
  config.network = NetworkType::kHub;
  config.seed = 23;
  Cluster cluster(config);
  ExperimentConfig exp;
  exp.reps = 25;
  const auto result = cluster::measure_collective(
      cluster, exp, [](mpi::Proc& p, int) {
        Buffer data;
        if (p.rank() == 0) {
          data = pattern_payload(1, 1000);
        }
        p.comm_world().coll().bcast(data, 0, "mcast-binary");
      });
  EXPECT_GT(result.net_delta.collisions, 0u)
      << "6-proc binary bcast on a hub should collide (paper, Fig. 9 text)";
  EXPECT_GT(result.latencies_us.spread(), 0.0);
}

// The ORNL comparison: ACK-based reliable multicast does not beat the scout
// approach even in the best case, and degrades with a late receiver.
TEST(PaperShapes, AckMcastDoesNotBeatScouts) {
  const double ack = median_bcast_latency(6, NetworkType::kSwitch,
                                          "ack-mcast", 2000);
  const double linear = median_bcast_latency(
      6, NetworkType::kSwitch, "mcast-linear", 2000);
  // ACK collection serializes at the root just like linear scouts, but
  // happens after the data: completion cannot be faster than scouts by
  // more than noise; typically it is slower.
  EXPECT_GT(ack, linear * 0.8);
}

// A full mixed-workload program survives end-to-end on both networks.
TEST(EndToEnd, MixedWorkloadRunsClean) {
  for (NetworkType net : {NetworkType::kHub, NetworkType::kSwitch}) {
    ClusterConfig config;
    config.num_procs = 7;
    config.network = net;
    Cluster cluster(config);
    std::vector<int> ok(7, 1);
    cluster.world().run([&](mpi::Proc& p) {
      const mpi::Comm comm = p.comm_world();
      for (int round = 0; round < 3; ++round) {
        Buffer data;
        if (p.rank() == round % 7) {
          data = pattern_payload(static_cast<std::uint64_t>(round), 3000);
        }
        comm.coll().bcast(data, round % 7,
                          round % 2 == 0 ? "mcast-binary" : "mcast-linear");
        if (!check_pattern(static_cast<std::uint64_t>(round), data)) {
          ok[static_cast<std::size_t>(p.rank())] = 0;
        }
        comm.coll().barrier("mcast");
        const std::int32_t mine = p.rank() + round;
        Buffer contrib(sizeof mine);
        std::memcpy(contrib.data(), &mine, sizeof mine);
        const Buffer sum = comm.coll().allreduce(
            contrib, mpi::Op::kSum, mpi::Datatype::kInt32, "mcast-binary");
        std::int32_t total = 0;
        std::memcpy(&total, sum.data(), sizeof total);
        if (total != 21 + 7 * round) {
          ok[static_cast<std::size_t>(p.rank())] = 0;
        }
      }
    });
    for (int r = 0; r < 7; ++r) {
      EXPECT_TRUE(ok[static_cast<std::size_t>(r)])
          << cluster::to_string(net) << " rank " << r;
    }
  }
}

}  // namespace
}  // namespace mcmpi
