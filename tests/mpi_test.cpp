// Unit tests for the mini-MPI core: groups, communicators, datatypes,
// point-to-point semantics (tags, wildcards, ordering, eager/rendezvous),
// and communicator management (dup/split).
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "coll/facade.hpp"
#include "common/bytes.hpp"
#include "mpi/datatype.hpp"
#include "mpi/group.hpp"

namespace mcmpi {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::NetworkType;

ClusterConfig config_for(int procs) {
  ClusterConfig config;
  config.num_procs = procs;
  config.network = NetworkType::kSwitch;
  config.seed = 5;
  return config;
}

// ----------------------------------------------------------------- groups

TEST(Group, WorldAndRankMapping) {
  const mpi::Group g = mpi::Group::world(5);
  EXPECT_EQ(g.size(), 5);
  EXPECT_EQ(g.world_rank(3), 3);
  EXPECT_EQ(g.rank_of(4), 4);
  EXPECT_EQ(g.rank_of(5), mpi::kAnySource);
}

TEST(Group, InclSelectsAndReorders) {
  const mpi::Group g = mpi::Group::world(6);
  const mpi::Group sub = g.incl({4, 1, 3});
  EXPECT_EQ(sub.size(), 3);
  EXPECT_EQ(sub.world_rank(0), 4);
  EXPECT_EQ(sub.world_rank(1), 1);
  EXPECT_EQ(sub.rank_of(3), 2);
  EXPECT_FALSE(sub.contains(0));
}

TEST(Group, DuplicateMembersRejected) {
  EXPECT_THROW(mpi::Group({1, 2, 1}), ContractViolation);
  EXPECT_THROW(mpi::Group({-1}), ContractViolation);
}

// -------------------------------------------------------------- datatypes

TEST(Datatype, SizesAndOpDomains) {
  EXPECT_EQ(mpi::datatype_size(mpi::Datatype::kByte), 1u);
  EXPECT_EQ(mpi::datatype_size(mpi::Datatype::kInt32), 4u);
  EXPECT_EQ(mpi::datatype_size(mpi::Datatype::kInt64), 8u);
  EXPECT_EQ(mpi::datatype_size(mpi::Datatype::kDouble), 8u);
  EXPECT_TRUE(mpi::op_defined(mpi::Op::kSum, mpi::Datatype::kDouble));
  EXPECT_FALSE(mpi::op_defined(mpi::Op::kBand, mpi::Datatype::kDouble));
  EXPECT_TRUE(mpi::op_defined(mpi::Op::kBor, mpi::Datatype::kInt32));
}

template <typename T>
std::vector<T> apply(mpi::Op op, std::vector<T> in, std::vector<T> inout) {
  std::span<const std::uint8_t> in_bytes(
      reinterpret_cast<const std::uint8_t*>(in.data()), in.size() * sizeof(T));
  std::span<std::uint8_t> inout_bytes(
      reinterpret_cast<std::uint8_t*>(inout.data()), inout.size() * sizeof(T));
  mpi::apply_op(op, mpi::datatype_of<T>(), in_bytes, inout_bytes, in.size());
  return inout;
}

TEST(Datatype, ArithmeticOps) {
  EXPECT_EQ(apply<std::int32_t>(mpi::Op::kSum, {1, 2}, {10, 20}),
            (std::vector<std::int32_t>{11, 22}));
  EXPECT_EQ(apply<std::int64_t>(mpi::Op::kProd, {3, 4}, {5, 6}),
            (std::vector<std::int64_t>{15, 24}));
  EXPECT_EQ(apply<double>(mpi::Op::kMax, {1.5, -2.0}, {0.5, 3.0}),
            (std::vector<double>{1.5, 3.0}));
  EXPECT_EQ(apply<double>(mpi::Op::kMin, {1.5, -2.0}, {0.5, 3.0}),
            (std::vector<double>{0.5, -2.0}));
}

TEST(Datatype, LogicalAndBitwiseOps) {
  EXPECT_EQ(apply<std::int32_t>(mpi::Op::kLand, {1, 0}, {1, 1}),
            (std::vector<std::int32_t>{1, 0}));
  EXPECT_EQ(apply<std::int32_t>(mpi::Op::kLor, {0, 0}, {0, 1}),
            (std::vector<std::int32_t>{0, 1}));
  EXPECT_EQ(apply<std::int32_t>(mpi::Op::kBand, {0b1100, -1}, {0b1010, 7}),
            (std::vector<std::int32_t>{0b1000, 7}));
  EXPECT_EQ(apply<std::int32_t>(mpi::Op::kBor, {0b1100, 0}, {0b1010, 0}),
            (std::vector<std::int32_t>{0b1110, 0}));
}

// ----------------------------------------------------------- p2p semantics

TEST(P2p, BasicSendRecvWithStatus) {
  Cluster cluster(config_for(2));
  mpi::Status status;
  bool ok = false;
  cluster.world().run([&](mpi::Proc& p) {
    const mpi::Comm comm = p.comm_world();
    if (p.rank() == 0) {
      p.send(comm, 1, 17, pattern_payload(1, 333));
    } else {
      const Buffer data = p.recv(comm, 0, 17, &status);
      ok = check_pattern(1, data);
    }
  });
  EXPECT_TRUE(ok);
  EXPECT_EQ(status.source, 0);
  EXPECT_EQ(status.tag, 17);
  EXPECT_EQ(status.count, 333u);
}

TEST(P2p, TagsSelectMessages) {
  Cluster cluster(config_for(2));
  std::vector<int> order;
  cluster.world().run([&](mpi::Proc& p) {
    const mpi::Comm comm = p.comm_world();
    if (p.rank() == 0) {
      p.send(comm, 1, /*tag=*/100, pattern_payload(100, 8));
      p.send(comm, 1, /*tag=*/200, pattern_payload(200, 8));
    } else {
      // Receive in reverse tag order: matching must be by tag, not arrival.
      const Buffer second = p.recv(comm, 0, 200);
      const Buffer first = p.recv(comm, 0, 100);
      if (check_pattern(200, second)) {
        order.push_back(200);
      }
      if (check_pattern(100, first)) {
        order.push_back(100);
      }
    }
  });
  EXPECT_EQ(order, (std::vector<int>{200, 100}));
}

TEST(P2p, AnySourceAndAnyTagWildcardsMatch) {
  Cluster cluster(config_for(3));
  std::vector<int> sources;
  cluster.world().run([&](mpi::Proc& p) {
    const mpi::Comm comm = p.comm_world();
    if (p.rank() != 0) {
      p.self().delay(microseconds(100) * p.rank());
      p.send(comm, 0, 7 + p.rank(), pattern_payload(1, 4));
    } else {
      for (int i = 0; i < 2; ++i) {
        mpi::Status st;
        (void)p.recv(comm, mpi::kAnySource, mpi::kAnyTag, &st);
        sources.push_back(st.source);
      }
    }
  });
  EXPECT_EQ(sources.size(), 2u);
  // Rank 1's message was sent earlier and must match first.
  EXPECT_EQ(sources[0], 1);
  EXPECT_EQ(sources[1], 2);
}

TEST(P2p, NonOvertakingSameTag) {
  Cluster cluster(config_for(2));
  bool in_order = false;
  cluster.world().run([&](mpi::Proc& p) {
    const mpi::Comm comm = p.comm_world();
    if (p.rank() == 0) {
      for (int i = 0; i < 10; ++i) {
        p.send(comm, 1, 5, pattern_payload(static_cast<std::uint64_t>(i), 64));
      }
    } else {
      in_order = true;
      for (int i = 0; i < 10; ++i) {
        const Buffer d = p.recv(comm, 0, 5);
        in_order = in_order && check_pattern(static_cast<std::uint64_t>(i), d);
      }
    }
  });
  EXPECT_TRUE(in_order);
}

TEST(P2p, UnexpectedMessagesAreBuffered) {
  Cluster cluster(config_for(2));
  bool ok = false;
  cluster.world().run([&](mpi::Proc& p) {
    const mpi::Comm comm = p.comm_world();
    if (p.rank() == 0) {
      p.send(comm, 1, 3, pattern_payload(8, 128));
    } else {
      // Receive long after the message arrived.
      p.self().delay(milliseconds(10));
      ok = check_pattern(8, p.recv(comm, 0, 3));
    }
  });
  EXPECT_TRUE(ok);
  EXPECT_GE(cluster.world().proc(1).engine().stats().unexpected_messages, 1u);
}

TEST(P2p, SelfSendMatchesSelfRecv) {
  Cluster cluster(config_for(1));
  bool ok = false;
  cluster.world().run([&](mpi::Proc& p) {
    const mpi::Comm comm = p.comm_world();
    p.send(comm, 0, 1, pattern_payload(2, 64));
    ok = check_pattern(2, p.recv(comm, 0, 1));
  });
  EXPECT_TRUE(ok);
}

TEST(P2p, RendezvousAboveEagerThreshold) {
  ClusterConfig config = config_for(2);
  config.eager_threshold = 1024;
  Cluster cluster(config);
  bool ok = false;
  cluster.world().run([&](mpi::Proc& p) {
    const mpi::Comm comm = p.comm_world();
    if (p.rank() == 0) {
      p.send(comm, 1, 1, pattern_payload(3, 10'000));
    } else {
      p.self().delay(milliseconds(1));  // force the RTS to be unexpected
      ok = check_pattern(3, p.recv(comm, 0, 1));
    }
  });
  EXPECT_TRUE(ok);
  EXPECT_EQ(cluster.world().proc(0).engine().stats().rendezvous_sends, 1u);
  EXPECT_EQ(cluster.world().proc(0).engine().stats().eager_sends, 0u);
}

TEST(P2p, IsendIrecvOverlap) {
  Cluster cluster(config_for(2));
  bool ok = false;
  cluster.world().run([&](mpi::Proc& p) {
    const mpi::Comm comm = p.comm_world();
    if (p.rank() == 0) {
      auto s1 = p.isend(comm, 1, 1, pattern_payload(1, 100));
      auto s2 = p.isend(comm, 1, 2, pattern_payload(2, 100));
      p.wait(s1);
      p.wait(s2);
    } else {
      auto r2 = p.irecv(comm, 0, 2);
      auto r1 = p.irecv(comm, 0, 1);
      const Buffer b2 = p.wait(r2);
      const Buffer b1 = p.wait(r1);
      ok = check_pattern(2, b2) && check_pattern(1, b1);
    }
  });
  EXPECT_TRUE(ok);
}

TEST(P2p, SendrecvExchangesWithoutDeadlock) {
  Cluster cluster(config_for(4));
  std::vector<int> ok(4, 0);
  cluster.world().run([&](mpi::Proc& p) {
    const mpi::Comm comm = p.comm_world();
    const int next = (p.rank() + 1) % 4;
    const int prev = (p.rank() + 3) % 4;
    const Buffer got =
        p.sendrecv(comm, next, 9, pattern_payload(static_cast<std::uint64_t>(p.rank()), 256),
                   prev, 9);
    ok[static_cast<std::size_t>(p.rank())] =
        check_pattern(static_cast<std::uint64_t>(prev), got);
  });
  for (int r = 0; r < 4; ++r) {
    EXPECT_TRUE(ok[static_cast<std::size_t>(r)]) << "rank " << r;
  }
}

TEST(P2p, TypedHelpersRoundTrip) {
  Cluster cluster(config_for(2));
  double received = 0;
  cluster.world().run([&](mpi::Proc& p) {
    const mpi::Comm comm = p.comm_world();
    if (p.rank() == 0) {
      p.send_value<double>(comm, 1, 4, 3.25);
    } else {
      received = p.recv_value<double>(comm, 0, 4);
    }
  });
  EXPECT_DOUBLE_EQ(received, 3.25);
}

// ------------------------------------------------------------ comm mgmt

TEST(Comm, WorldHasExpectedShape) {
  Cluster cluster(config_for(5));
  std::vector<int> sizes(5, 0);
  cluster.world().run([&](mpi::Proc& p) {
    const mpi::Comm comm = p.comm_world();
    sizes[static_cast<std::size_t>(p.rank())] = comm.size();
    EXPECT_EQ(comm.rank(), p.rank());
  });
  for (int s : sizes) {
    EXPECT_EQ(s, 5);
  }
}

TEST(Comm, DupCreatesIndependentContext) {
  Cluster cluster(config_for(3));
  bool ok = false;
  cluster.world().run([&](mpi::Proc& p) {
    const mpi::Comm world = p.comm_world();
    const mpi::Comm dup = p.dup(world);
    EXPECT_NE(dup.context(), world.context());
    EXPECT_EQ(dup.size(), world.size());
    // Same-tag traffic on the two communicators must not cross-match.
    if (p.rank() == 0) {
      p.send(world, 1, 5, pattern_payload(1, 16));
      p.send(dup, 1, 5, pattern_payload(2, 16));
    } else if (p.rank() == 1) {
      const Buffer via_dup = p.recv(dup, 0, 5);
      const Buffer via_world = p.recv(world, 0, 5);
      ok = check_pattern(2, via_dup) && check_pattern(1, via_world);
    }
  });
  EXPECT_TRUE(ok);
}

TEST(Comm, DupTwiceGivesDistinctContexts) {
  Cluster cluster(config_for(2));
  cluster.world().run([&](mpi::Proc& p) {
    const mpi::Comm world = p.comm_world();
    const mpi::Comm a = p.dup(world);
    const mpi::Comm b = p.dup(world);
    EXPECT_NE(a.context(), b.context());
  });
}

TEST(Comm, SplitPartitionsByColorAndOrdersByKey) {
  Cluster cluster(config_for(6));
  std::vector<int> new_rank(6, -1);
  std::vector<int> new_size(6, -1);
  cluster.world().run([&](mpi::Proc& p) {
    const mpi::Comm world = p.comm_world();
    // Even/odd split, reversed key order within each color.
    const int color = p.rank() % 2;
    const int key = -p.rank();
    const mpi::Comm sub = p.split(world, color, key);
    new_rank[static_cast<std::size_t>(p.rank())] = sub.rank();
    new_size[static_cast<std::size_t>(p.rank())] = sub.size();
  });
  // Evens: {0,2,4} keyed {0,-2,-4} -> order 4,2,0.
  EXPECT_EQ(new_size, (std::vector<int>{3, 3, 3, 3, 3, 3}));
  EXPECT_EQ(new_rank[4], 0);
  EXPECT_EQ(new_rank[2], 1);
  EXPECT_EQ(new_rank[0], 2);
  EXPECT_EQ(new_rank[5], 0);
  EXPECT_EQ(new_rank[3], 1);
  EXPECT_EQ(new_rank[1], 2);
}

TEST(Comm, SplitWithUndefinedColorExcludes) {
  Cluster cluster(config_for(4));
  std::vector<int> valid(4, -1);
  cluster.world().run([&](mpi::Proc& p) {
    const mpi::Comm sub =
        p.split(p.comm_world(), p.rank() == 3 ? -1 : 0, p.rank());
    valid[static_cast<std::size_t>(p.rank())] = sub.valid() ? 1 : 0;
  });
  EXPECT_EQ(valid, (std::vector<int>{1, 1, 1, 0}));
}

TEST(Engine, SinkReceivesInternalTagTraffic) {
  Cluster cluster(config_for(2));
  std::vector<std::pair<mpi::Rank, std::size_t>> sunk;
  cluster.world().run([&](mpi::Proc& p) {
    const mpi::Comm comm = p.comm_world();
    if (p.rank() == 1) {
      p.engine().set_sink(comm.context(), mpi::kTagSeqNack,
                          [&](mpi::Rank src, PayloadRef data) {
                            sunk.emplace_back(src, data.size());
                          });
    }
    // Make sure the sink is installed before rank 0 sends.
    comm.coll().barrier("mcast");
    if (p.rank() == 0) {
      p.send(comm, 1, mpi::kTagSeqNack, pattern_payload(1, 24),
             net::FrameKind::kControl);
      p.send(comm, 1, mpi::kTagSeqNack, pattern_payload(2, 48),
             net::FrameKind::kControl);
    } else {
      // Rank 1 never posts a receive: the sink must consume both while the
      // rank sits in an unrelated delay.
      p.self().delay(milliseconds(5));
    }
  });
  ASSERT_EQ(sunk.size(), 2u);
  EXPECT_EQ(sunk[0], (std::pair<mpi::Rank, std::size_t>{0, 24}));
  EXPECT_EQ(sunk[1], (std::pair<mpi::Rank, std::size_t>{0, 48}));
}

TEST(Engine, EagerThresholdBoundaryIsInclusive) {
  ClusterConfig config = config_for(2);
  config.eager_threshold = 1000;
  Cluster cluster(config);
  cluster.world().run([&](mpi::Proc& p) {
    const mpi::Comm comm = p.comm_world();
    if (p.rank() == 0) {
      p.send(comm, 1, 1, pattern_payload(1, 1000));  // == threshold: eager
      p.send(comm, 1, 2, pattern_payload(2, 1001));  // > threshold: rdz
    } else {
      (void)p.recv(comm, 0, 1);
      (void)p.recv(comm, 0, 2);
    }
  });
  const auto& stats = cluster.world().proc(0).engine().stats();
  EXPECT_EQ(stats.eager_sends, 1u);
  EXPECT_EQ(stats.rendezvous_sends, 1u);
}

TEST(World, RunTwiceReusesTheCluster) {
  Cluster cluster(config_for(3));
  int first_sum = 0;
  int second_sum = 0;
  cluster.world().run([&](mpi::Proc& p) {
    if (p.rank() == 0) {
      first_sum += 1;
    }
    p.comm_world().coll().barrier("mcast");
  });
  // Second program on the same world: channels and FDB are already warm;
  // sequence numbers must carry over coherently.
  cluster.world().run([&](mpi::Proc& p) {
    Buffer data;
    if (p.rank() == 0) {
      data = pattern_payload(3, 128);
    }
    p.comm_world().coll().bcast(data, 0, "mcast-binary");
    if (p.rank() == 2 && check_pattern(3, data)) {
      second_sum += 1;
    }
  });
  EXPECT_EQ(first_sum, 1);
  EXPECT_EQ(second_sum, 1);
}

TEST(Comm, CollectivesWorkOnSplitComms) {
  Cluster cluster(config_for(6));
  std::vector<int> ok(6, 0);
  cluster.world().run([&](mpi::Proc& p) {
    const mpi::Comm sub = p.split(p.comm_world(), p.rank() % 2, p.rank());
    Buffer data;
    if (sub.rank() == 0) {
      data = pattern_payload(static_cast<std::uint64_t>(p.rank() % 2), 2048);
    }
    sub.coll().bcast(data, 0, "mcast-binary");
    ok[static_cast<std::size_t>(p.rank())] =
        check_pattern(static_cast<std::uint64_t>(p.rank() % 2), data);
  });
  for (int r = 0; r < 6; ++r) {
    EXPECT_TRUE(ok[static_cast<std::size_t>(r)]) << "rank " << r;
  }
}

}  // namespace
}  // namespace mcmpi
