// Unit tests for the Ethernet models: frame accounting, NIC filtering,
// CSMA/CD hub behaviour (collisions, backoff, variance), switch learning,
// flooding, IGMP snooping and store-and-forward timing.
#include <gtest/gtest.h>

#include "net/frame.hpp"
#include "net/hub.hpp"
#include "net/nic.hpp"
#include "net/switch.hpp"
#include "sim/simulator.hpp"

namespace mcmpi::net {
namespace {

Frame make_frame(MacAddr dst, std::size_t payload_bytes,
                 FrameKind kind = FrameKind::kData) {
  Frame f;
  f.dst = dst;
  f.kind = kind;
  f.payload = PayloadRef(Buffer(payload_bytes, 0xCC));
  return f;
}

// ------------------------------------------------------------------ MACs

TEST(MacAddr, Classification) {
  EXPECT_TRUE(MacAddr::broadcast().is_broadcast());
  EXPECT_TRUE(MacAddr::broadcast().is_multicast());
  EXPECT_TRUE(MacAddr::ip_multicast(0xE0000001).is_multicast());
  EXPECT_FALSE(MacAddr::ip_multicast(0xE0000001).is_broadcast());
  EXPECT_FALSE(MacAddr::host(3).is_multicast());
}

TEST(MacAddr, Rfc1112MappingUsesLow23Bits) {
  // 239.1.2.3 -> 01:00:5e:01:02:03
  EXPECT_EQ(MacAddr::ip_multicast(0xEF010203).to_string(), "01:00:5e:01:02:03");
  // Group bits above the low 23 are ignored (the RFC 1112 ambiguity).
  EXPECT_EQ(MacAddr::ip_multicast(0xEF810203), MacAddr::ip_multicast(0xE0010203));
}

TEST(MacAddr, ToStringFormatsHost) {
  EXPECT_EQ(MacAddr::host(9).to_string(), "02:00:00:00:00:09");
}

// ---------------------------------------------------------------- frames

TEST(Frame, MinimumFrameSizeApplies) {
  const Frame f = make_frame(MacAddr::host(1), 0);
  EXPECT_EQ(f.frame_bytes(), 64);
  EXPECT_EQ(f.wire_bytes(), 64 + 8 + 12);
}

TEST(Frame, FullMtuFrameSize) {
  const Frame f = make_frame(MacAddr::host(1), 1500);
  EXPECT_EQ(f.frame_bytes(), 1500 + 18);
  EXPECT_EQ(f.wire_bytes(), 1500 + 18 + 20);
}

TEST(Frame, WireTimeAt100Mbps) {
  const Frame f = make_frame(MacAddr::host(1), 1500);
  // 1538 bytes * 80 ns.
  EXPECT_EQ(f.wire_time(100'000'000).count(), 1538 * 80);
}

TEST(Frame, OversizedPayloadRejected) {
  const Frame f = make_frame(MacAddr::host(1), 1501);
  EXPECT_THROW((void)f.frame_bytes(), ContractViolation);
}

// ------------------------------------------------------------------- NIC

TEST(Nic, FilterAcceptsOwnBroadcastAndJoinedGroups) {
  sim::Simulator sim;
  Hub hub(sim);
  Nic nic(sim, MacAddr::host(1), "n1");
  nic.attach_to(hub);
  EXPECT_TRUE(nic.accepts(MacAddr::host(1)));
  EXPECT_FALSE(nic.accepts(MacAddr::host(2)));
  EXPECT_TRUE(nic.accepts(MacAddr::broadcast()));

  const MacAddr group = MacAddr::ip_multicast(0xEF010101);
  EXPECT_FALSE(nic.accepts(group));
  nic.join_multicast(group);
  EXPECT_TRUE(nic.accepts(group));
  // Reference counting: two joins need two leaves.
  nic.join_multicast(group);
  nic.leave_multicast(group);
  EXPECT_TRUE(nic.accepts(group));
  nic.leave_multicast(group);
  EXPECT_FALSE(nic.accepts(group));
}

// ------------------------------------------------------------------- hub

struct HubFixture {
  sim::Simulator sim{1};
  Hub hub{sim};
  std::vector<std::unique_ptr<Nic>> nics;
  std::vector<std::vector<Frame>> received;

  explicit HubFixture(int n) {
    received.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      nics.push_back(std::make_unique<Nic>(
          sim, MacAddr::host(static_cast<std::uint32_t>(i)),
          "h" + std::to_string(i)));
      nics.back()->attach_to(hub);
      auto* sink = &received[static_cast<std::size_t>(i)];
      nics.back()->set_rx_handler(
          [sink](const Frame& f) { sink->push_back(f); });
    }
  }
};

TEST(Hub, DeliversUnicastOnlyToAddressee) {
  HubFixture fx(3);
  fx.nics[0]->send(make_frame(MacAddr::host(1), 100));
  fx.sim.run();
  EXPECT_EQ(fx.received[1].size(), 1u);
  EXPECT_EQ(fx.received[2].size(), 0u);  // filtered at the NIC
  EXPECT_EQ(fx.hub.counters().host_tx_frames, 1u);
  EXPECT_EQ(fx.hub.counters().deliveries, 1u);
  EXPECT_EQ(fx.hub.counters().filtered, 1u);
}

TEST(Hub, BroadcastReachesEveryoneButSender) {
  HubFixture fx(4);
  fx.nics[0]->send(make_frame(MacAddr::broadcast(), 50));
  fx.sim.run();
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(fx.received[static_cast<std::size_t>(i)].size(), 1u);
  }
  EXPECT_TRUE(fx.received[0].empty());
}

TEST(Hub, SerializesBackToBackFramesFromOneSender) {
  HubFixture fx(2);
  fx.nics[0]->send(make_frame(MacAddr::host(1), 1000));
  fx.nics[0]->send(make_frame(MacAddr::host(1), 1000));
  SimTime done{};
  fx.nics[1]->set_rx_handler([&](const Frame&) { done = fx.sim.now(); });
  fx.sim.run();
  // Two 1058-byte wire frames at 80 ns/B plus repeater latency ~= 170 us.
  const auto wire = make_frame(MacAddr::host(1), 1000).wire_time(100'000'000);
  EXPECT_GE(done.count(), (2 * wire).count());
}

TEST(Hub, SimultaneousSendersCollideAndRecover) {
  HubFixture fx(3);
  // Two stations become ready at exactly the same instant -> the hub sees
  // the second within the sense window -> collision, then backoff.
  fx.sim.schedule_at(microseconds(10), [&] {
    fx.nics[0]->send(make_frame(MacAddr::host(2), 200));
  });
  fx.sim.schedule_at(microseconds(10), [&] {
    fx.nics[1]->send(make_frame(MacAddr::host(2), 200));
  });
  fx.sim.run();
  EXPECT_GE(fx.hub.counters().collisions, 1u);
  EXPECT_GE(fx.hub.counters().backoffs, 2u);
  // Both frames are eventually delivered.
  EXPECT_EQ(fx.received[2].size(), 2u);
  EXPECT_EQ(fx.hub.counters().excessive_collision_drops, 0u);
}

TEST(Hub, DeferredStationsCollideAtIdleThenResolve) {
  HubFixture fx(4);
  // Station 0 occupies the medium; 1 and 2 arrive mid-transmission (outside
  // the sense window), defer, then collide with each other at idle.
  fx.sim.schedule_at(microseconds(10), [&] {
    fx.nics[0]->send(make_frame(MacAddr::host(3), 1400));
  });
  fx.sim.schedule_at(microseconds(60), [&] {
    fx.nics[1]->send(make_frame(MacAddr::host(3), 100));
  });
  fx.sim.schedule_at(microseconds(70), [&] {
    fx.nics[2]->send(make_frame(MacAddr::host(3), 100));
  });
  fx.sim.run();
  EXPECT_GE(fx.hub.counters().collisions, 1u);
  EXPECT_EQ(fx.received[3].size(), 3u);
}

TEST(Hub, LateArrivalOutsideSenseWindowDefersWithoutCollision) {
  HubFixture fx(3);
  fx.sim.schedule_at(microseconds(10), [&] {
    fx.nics[0]->send(make_frame(MacAddr::host(2), 1400));
  });
  // 50 us after start: carrier clearly sensed, no collision.
  fx.sim.schedule_at(microseconds(60), [&] {
    fx.nics[1]->send(make_frame(MacAddr::host(2), 100));
  });
  fx.sim.run();
  EXPECT_EQ(fx.hub.counters().collisions, 0u);
  EXPECT_EQ(fx.received[2].size(), 2u);
}

TEST(Hub, MulticastDeliversToJoinedOnly) {
  HubFixture fx(4);
  const MacAddr group = MacAddr::ip_multicast(0xEF010101);
  fx.nics[1]->join_multicast(group);
  fx.nics[3]->join_multicast(group);
  fx.nics[0]->send(make_frame(group, 300));
  fx.sim.run();
  EXPECT_EQ(fx.received[1].size(), 1u);
  EXPECT_EQ(fx.received[2].size(), 0u);
  EXPECT_EQ(fx.received[3].size(), 1u);
  // One transmission regardless of group size: the point of multicast.
  EXPECT_EQ(fx.hub.counters().host_tx_frames, 1u);
}

TEST(Hub, DropHookInjectsPerReceiverLoss) {
  HubFixture fx(3);
  fx.hub.set_drop_hook([](const Frame&, const Nic& receiver) {
    return receiver.mac() == MacAddr::host(1);
  });
  fx.nics[0]->send(make_frame(MacAddr::broadcast(), 10));
  fx.sim.run();
  EXPECT_TRUE(fx.received[1].empty());
  EXPECT_EQ(fx.received[2].size(), 1u);
  EXPECT_EQ(fx.hub.counters().injected_drops, 1u);
}

// ---------------------------------------------------------------- switch

struct SwitchFixture {
  sim::Simulator sim{1};
  Switch sw{sim};
  std::vector<std::unique_ptr<Nic>> nics;
  std::vector<std::vector<Frame>> received;

  explicit SwitchFixture(int n) {
    received.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      nics.push_back(std::make_unique<Nic>(
          sim, MacAddr::host(static_cast<std::uint32_t>(i)),
          "s" + std::to_string(i)));
      nics.back()->attach_to(sw);
      auto* sink = &received[static_cast<std::size_t>(i)];
      nics.back()->set_rx_handler(
          [sink](const Frame& f) { sink->push_back(f); });
    }
  }
};

TEST(Switch, UnknownUnicastFloodsThenLearns) {
  SwitchFixture fx(4);
  fx.nics[0]->send(make_frame(MacAddr::host(2), 64));
  fx.sim.run();
  // First frame flooded to all other ports, but only host 2's NIC accepts.
  EXPECT_EQ(fx.received[2].size(), 1u);
  EXPECT_EQ(fx.sw.counters().filtered, 2u);
  EXPECT_EQ(fx.sw.fdb_size(), 1u);  // learned host 0

  // Reply: now both are learned; no flooding.
  const auto filtered_before = fx.sw.counters().filtered;
  fx.nics[2]->send(make_frame(MacAddr::host(0), 64));
  fx.sim.run();
  EXPECT_EQ(fx.received[0].size(), 1u);
  EXPECT_EQ(fx.sw.counters().filtered, filtered_before);
  EXPECT_EQ(fx.sw.fdb_size(), 2u);
}

TEST(Switch, IgmpSnoopingLimitsMulticastCopies) {
  SwitchFixture fx(5);
  const MacAddr group = MacAddr::ip_multicast(0xEF010102);
  fx.nics[2]->join_multicast(group);
  fx.nics[4]->join_multicast(group);
  fx.nics[0]->send(make_frame(group, 500));
  fx.sim.run();
  EXPECT_EQ(fx.received[2].size(), 1u);
  EXPECT_EQ(fx.received[4].size(), 1u);
  EXPECT_TRUE(fx.received[1].empty());
  EXPECT_TRUE(fx.received[3].empty());
  // Exactly two egress deliveries; nothing filtered (snooping, not flood).
  EXPECT_EQ(fx.sw.counters().deliveries, 2u);
  EXPECT_EQ(fx.sw.counters().filtered, 0u);
}

TEST(Switch, StoreAndForwardAddsLatencyVersusHub) {
  // The same unicast frame takes longer through the switch than the hub:
  // two serializations + forwarding latency vs one + repeater latency.
  auto measure = [](auto& fixture) {
    SimTime arrival{};
    fixture.nics[1]->set_rx_handler(
        [&, &fx = fixture](const Frame&) { arrival = fx.sim.now(); });
    fixture.nics[0]->send(make_frame(MacAddr::host(1), 1000));
    fixture.sim.run();
    return arrival;
  };
  HubFixture hub_fx(2);
  SwitchFixture sw_fx(2);
  const SimTime via_hub = measure(hub_fx);
  const SimTime via_switch = measure(sw_fx);
  EXPECT_GT(via_switch.count(), via_hub.count());
}

TEST(Switch, FullDuplexAllowsParallelTransfers) {
  // 0->1 and 2->3 proceed concurrently on a switch: total time is one
  // frame's worth, not two (after learning).
  SwitchFixture fx(4);
  fx.nics[0]->send(make_frame(MacAddr::host(1), 64));
  fx.nics[1]->send(make_frame(MacAddr::host(0), 64));
  fx.nics[2]->send(make_frame(MacAddr::host(3), 64));
  fx.nics[3]->send(make_frame(MacAddr::host(2), 64));
  fx.sim.run();

  SimTime t0{};
  SimTime t1{};
  fx.nics[1]->set_rx_handler([&](const Frame&) { t0 = fx.sim.now(); });
  fx.nics[3]->set_rx_handler([&](const Frame&) { t1 = fx.sim.now(); });
  const SimTime start = fx.sim.now();
  fx.nics[0]->send(make_frame(MacAddr::host(1), 1400));
  fx.nics[2]->send(make_frame(MacAddr::host(3), 1400));
  fx.sim.run();
  const auto wire = make_frame(MacAddr::host(1), 1400).wire_time(100'000'000);
  // Each flow finishes in ~2*wire + forwarding, and they overlap: neither
  // should take as long as a serialized 4*wire.
  EXPECT_LT((t0 - start).count(), (3 * wire).count());
  EXPECT_LT((t1 - start).count(), (3 * wire).count());
}

TEST(Switch, MulticastWithNoMembersForwardsNothing) {
  SwitchFixture fx(4);
  const MacAddr group = MacAddr::ip_multicast(0xEF010999);
  fx.nics[0]->send(make_frame(group, 200));
  fx.sim.run();
  EXPECT_EQ(fx.sw.counters().host_tx_frames, 1u);
  EXPECT_EQ(fx.sw.counters().deliveries, 0u)
      << "IGMP snooping forwards to member ports only";
}

TEST(Switch, UnicastToIngressPortIsNotReflected) {
  SwitchFixture fx(2);
  // Teach the switch both addresses.
  fx.nics[0]->send(make_frame(MacAddr::host(1), 64));
  fx.nics[1]->send(make_frame(MacAddr::host(0), 64));
  fx.sim.run();
  const auto delivered_before = fx.sw.counters().deliveries;
  // A frame addressed to a host on the *same* port (spoofed src) just dies.
  fx.nics[0]->send(make_frame(MacAddr::host(0), 64));
  fx.sim.run();
  EXPECT_EQ(fx.sw.counters().deliveries, delivered_before);
}

TEST(Hub, BackoffDeterminismAcrossSeeds) {
  // Identical seeds give identical collision resolution; different seeds
  // resolve differently (the hub draws backoff slots from the sim RNG).
  auto run = [](std::uint64_t seed) {
    sim::Simulator sim(seed);
    Hub hub(sim);
    std::vector<std::unique_ptr<Nic>> nics;
    std::vector<std::int64_t> times;
    for (int i = 0; i < 3; ++i) {
      nics.push_back(std::make_unique<Nic>(
          sim, MacAddr::host(static_cast<std::uint32_t>(i)),
          "h" + std::to_string(i)));
      nics.back()->attach_to(hub);
    }
    nics[2]->set_rx_handler(
        [&](const Frame&) { times.push_back(sim.now().count()); });
    sim.schedule_at(microseconds(10), [&] {
      nics[0]->send(make_frame(MacAddr::host(2), 500));
      nics[1]->send(make_frame(MacAddr::host(2), 500));
    });
    sim.run();
    return times;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(Switch, EgressQueueTailDrops) {
  sim::Simulator sim{1};
  Switch::Params params;
  params.max_queue_frames = 2;
  Switch sw(sim, params);
  Nic a(sim, MacAddr::host(0), "a");
  Nic b(sim, MacAddr::host(1), "b");
  a.attach_to(sw);
  b.attach_to(sw);
  int delivered = 0;
  b.set_rx_handler([&](const Frame&) { ++delivered; });
  // Teach the switch where b lives to avoid flood accounting noise.
  b.send(make_frame(MacAddr::host(0), 64));
  sim.run();
  // Burst far beyond the 2-frame egress queue: ingress keeps up (one at a
  // time) but egress throughput equals ingress, so to force a drop we
  // inject frames directly back-to-back from two sources.
  Nic c(sim, MacAddr::host(2), "c");
  c.attach_to(sw);
  for (int i = 0; i < 6; ++i) {
    a.send(make_frame(MacAddr::host(1), 1400));
    c.send(make_frame(MacAddr::host(1), 1400));
  }
  sim.run();
  EXPECT_GT(sw.counters().queue_drops, 0u);
  EXPECT_LT(delivered, 12);
}

}  // namespace
}  // namespace mcmpi::net
