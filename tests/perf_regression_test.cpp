// Guards the zero-copy payload pipeline: (a) the PayloadRef path delivers
// byte-exact data for the multicast collectives, and (b) the structural
// zero-copy properties hold — switch fan-out of one multicast frame to N
// ports performs no per-port payload allocation, and whole-stack payload
// cost is independent of receiver count.  A regression that reintroduces
// per-layer or per-receiver copies fails here even if results stay correct.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "coll/facade.hpp"
#include "coll/mcast.hpp"
#include "inet/ip.hpp"
#include "inet/udp.hpp"
#include "net/counters.hpp"
#include "net/switch.hpp"
#include "sim/simulator.hpp"

namespace mcmpi {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::NetworkType;

ClusterConfig switch_config(int procs) {
  ClusterConfig config;
  config.num_procs = procs;
  config.network = NetworkType::kSwitch;
  config.seed = 7;
  return config;
}

// --------------------------------------------------------- (a) correctness

TEST(PayloadPath, BcastDeliversExactBytesThroughZeroCopyPipeline) {
  for (const std::string algo : {"mcast-binary", "mcast-linear"}) {
    constexpr int kProcs = 6;
    constexpr std::size_t kBytes = 64 * 1024;  // 45 fragments
    Cluster cluster(switch_config(kProcs));
    std::vector<int> ok(kProcs, 0);
    cluster.world().run([&](mpi::Proc& p) {
      Buffer data;
      if (p.rank() == 0) {
        data = pattern_payload(0xFEED, kBytes);
      }
      p.comm_world().coll().bcast(data, 0, algo);
      ok[static_cast<std::size_t>(p.rank())] =
          data.size() == kBytes && check_pattern(0xFEED, data);
    });
    for (int r = 0; r < kProcs; ++r) {
      EXPECT_TRUE(ok[static_cast<std::size_t>(r)]) << algo << " rank " << r;
    }
  }
}

TEST(PayloadPath, AllgatherDeliversEveryBlockExactly) {
  for (const std::string algo : {"mcast-lockstep", "mcast-blast"}) {
    constexpr int kProcs = 5;
    constexpr std::size_t kBytes = 3000;  // forces fragmentation
    Cluster cluster(switch_config(kProcs));
    std::vector<int> ok(kProcs, 0);
    cluster.world().run([&](mpi::Proc& p) {
      const Buffer mine =
          pattern_payload(static_cast<std::uint64_t>(p.rank()), kBytes);
      const auto blocks = p.comm_world().coll().allgather(mine, algo);
      bool good = blocks.size() == static_cast<std::size_t>(kProcs);
      for (int r = 0; good && r < kProcs; ++r) {
        good = blocks[static_cast<std::size_t>(r)].size() == kBytes &&
               check_pattern(static_cast<std::uint64_t>(r),
                             blocks[static_cast<std::size_t>(r)]);
      }
      ok[static_cast<std::size_t>(p.rank())] = good;
    });
    for (int r = 0; r < kProcs; ++r) {
      EXPECT_TRUE(ok[static_cast<std::size_t>(r)]) << algo << " rank " << r;
    }
  }
}

TEST(PayloadPath, BarrierReleasesEveryRank) {
  constexpr int kProcs = 9;
  Cluster cluster(switch_config(kProcs));
  std::vector<int> done(kProcs, 0);
  cluster.world().run([&](mpi::Proc& p) {
    p.comm_world().coll().barrier("mcast");
    done[static_cast<std::size_t>(p.rank())] = 1;
  });
  for (int r = 0; r < kProcs; ++r) {
    EXPECT_TRUE(done[static_cast<std::size_t>(r)]) << "rank " << r;
  }
}

// --------------------------------------------- (b) zero-copy structure

// Fanning one multicast frame out to N member ports must not allocate any
// payload buffer: every egress queue entry and every delivered frame shares
// the sender's allocation.
TEST(ZeroCopy, SwitchFanOutSharesOnePayloadAllocation) {
  constexpr int kPorts = 9;
  sim::Simulator sim{1};
  net::Switch sw(sim);
  std::vector<std::unique_ptr<net::Nic>> nics;
  int delivered = 0;
  const net::MacAddr group = net::MacAddr::ip_multicast(0xEF000042);
  for (int i = 0; i < kPorts; ++i) {
    nics.push_back(std::make_unique<net::Nic>(
        sim, net::MacAddr::host(static_cast<std::uint32_t>(i)),
        "h" + std::to_string(i)));
    nics.back()->attach_to(sw);
    if (i != 0) {
      nics.back()->join_multicast(group);
      nics.back()->set_rx_handler([&delivered, i](const net::Frame& f) {
        ++delivered;
        EXPECT_EQ(f.payload.size(), 1400u) << "receiver " << i;
      });
    }
  }

  net::Frame frame;
  frame.dst = group;
  frame.payload = PayloadRef(pattern_payload(1, 1400));

  const PayloadCounters before = net::payload_counters();
  nics[0]->send(std::move(frame));
  sim.run();
  const PayloadCounters delta = net::payload_counters().since(before);

  EXPECT_EQ(delivered, kPorts - 1);
  EXPECT_EQ(delta.buffer_allocs, 0u)
      << "fan-out to " << kPorts - 1 << " ports must share one allocation";
  EXPECT_EQ(delta.byte_copies, 0u);
}

// Whole-stack version: a fragmented 64 KiB multicast datagram through
// IP+UDP to N receivers costs the same number of payload allocations for
// N=2 and N=8 — one wire buffer plus one 20 B header per fragment, nothing
// per receiver.  Reassembly must take the zero-copy join path.
struct McastRig {
  explicit McastRig(int hosts) : sim(11), sw(sim) {
    for (int i = 0; i < hosts; ++i) {
      arp.add(inet::IpAddr::host(static_cast<std::uint32_t>(i)),
              net::MacAddr::host(static_cast<std::uint32_t>(i)));
    }
    for (int i = 0; i < hosts; ++i) {
      auto host = std::make_unique<Host>();
      host->nic = std::make_unique<net::Nic>(
          sim, net::MacAddr::host(static_cast<std::uint32_t>(i)),
          "host" + std::to_string(i));
      host->nic->attach_to(sw);
      host->ip = std::make_unique<inet::IpStack>(
          sim, *host->nic, inet::IpAddr::host(static_cast<std::uint32_t>(i)),
          arp);
      host->udp = std::make_unique<inet::UdpStack>(*host->ip);
      stacks.push_back(std::move(host));
    }
  }

  struct Host {
    std::unique_ptr<net::Nic> nic;
    std::unique_ptr<inet::IpStack> ip;
    std::unique_ptr<inet::UdpStack> udp;
  };
  sim::Simulator sim;
  net::Switch sw;
  inet::ArpTable arp;
  std::vector<std::unique_ptr<Host>> stacks;
};

std::uint64_t allocs_for_receivers(int receivers, std::size_t bytes) {
  McastRig rig(receivers + 1);
  const inet::IpAddr group = inet::IpAddr::multicast_group(3);
  constexpr std::uint16_t kPort = 9000;
  std::vector<std::unique_ptr<inet::UdpSocket>> sockets;
  for (int i = 1; i <= receivers; ++i) {
    auto socket = rig.stacks[static_cast<std::size_t>(i)]->udp->open(kPort);
    socket->set_recv_buffer(bytes + 1024);
    socket->join(group);
    sockets.push_back(std::move(socket));
  }
  auto tx = rig.stacks[0]->udp->open(0);
  const Buffer payload = pattern_payload(5, bytes);

  const PayloadCounters before = payload_counters();
  tx->sendto(group, kPort, PayloadRef(payload));
  rig.sim.run();
  const PayloadCounters delta = payload_counters().since(before);

  // Every receiver has the exact bytes, via the zero-copy join.
  for (auto& socket : sockets) {
    auto d = socket->try_recv();
    EXPECT_TRUE(d.has_value());
    EXPECT_TRUE(check_pattern(5, d->data));
  }
  for (int i = 1; i <= receivers; ++i) {
    EXPECT_GE(
        rig.stacks[static_cast<std::size_t>(i)]->ip->stats()
            .zero_copy_reassemblies,
        1u);
  }
  return delta.buffer_allocs;
}

TEST(ZeroCopy, StackPayloadAllocationsIndependentOfReceiverCount) {
  constexpr std::size_t kBytes = 64 * 1024;
  const std::uint64_t with_two = allocs_for_receivers(2, kBytes);
  const std::uint64_t with_eight = allocs_for_receivers(8, kBytes);
  EXPECT_EQ(with_two, with_eight)
      << "payload allocations must not scale with receiver count";
  // 1 adopted payload + 1 wire datagram + one 20 B header per fragment
  // (ceil((65536+24)/1480) = 45).  Allow a little slack, but nothing close
  // to per-receiver-per-fragment cost.
  EXPECT_LE(with_eight, 1 + 1 + 45 + 5u);
}

// Hub repeat of one multicast frame to every station: same property.
TEST(ZeroCopy, EndToEndBcastPayloadCopiesAreFlatInRankCount) {
  // Simulated 64 KiB broadcast: total payload byte-copies must be
  // 1 (wire assembly at the root) + N-1 (per-receiver delivery copy at the
  // MPI boundary) — not O(N * fragments).
  for (int procs : {3, 9}) {
    Cluster cluster(switch_config(procs));
    constexpr std::size_t kBytes = 64 * 1024;
    const PayloadCounters before = payload_counters();
    cluster.world().run([&](mpi::Proc& p) {
      Buffer data;
      if (p.rank() == 0) {
        data = pattern_payload(0xABBA, kBytes);
      }
      p.comm_world().coll().bcast(data, 0, "mcast-linear");
      EXPECT_TRUE(check_pattern(0xABBA, data));
    });
    const PayloadCounters delta = payload_counters().since(before);
    // Copies that touch ~64 KiB: one per receiver plus the root's wire
    // assembly; scouts and control traffic add only tiny copies.  Compare
    // bytes to make the bound robust: strictly less than 2 full payload
    // images per receiver.
    EXPECT_LT(delta.bytes_copied,
              static_cast<std::uint64_t>(procs + 1) * kBytes)
        << procs << " procs";
  }
}

}  // namespace
}  // namespace mcmpi
