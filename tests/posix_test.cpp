// Tests for the real-socket backend.  Multicast over loopback may be
// unavailable in sandboxes; every test that needs it skips cleanly.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/bytes.hpp"
#include "posix/real_cluster.hpp"
#include "posix/socket.hpp"

namespace mcmpi::posix {
namespace {

bool multicast_ok() {
  static const bool available = RealUdpSocket::loopback_multicast_available();
  return available;
}

#define SKIP_WITHOUT_MULTICAST()                                         \
  do {                                                                   \
    if (!multicast_ok()) {                                               \
      GTEST_SKIP() << "loopback multicast unavailable in this sandbox";  \
    }                                                                    \
  } while (false)

TEST(RealSocket, UnicastLoopbackRoundTrip) {
  RealUdpSocket rx(0);
  RealUdpSocket tx(0);
  const Buffer payload = pattern_payload(1, 100);
  tx.send_to(0, rx.port(), payload);
  const auto got = rx.recv(std::chrono::milliseconds(1000));
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(check_pattern(1, got->data));
  EXPECT_EQ(got->src_port, tx.port());
}

TEST(RealSocket, RecvTimesOutWithoutTraffic) {
  RealUdpSocket rx(0);
  const auto got = rx.recv(std::chrono::milliseconds(50));
  EXPECT_FALSE(got.has_value());
}

// Batched receive: several datagrams queued on the socket come back from
// ONE recv_batch call (recvmmsg drains the burst in a single syscall),
// in order, with payloads and source ports intact.
TEST(RealSocket, RecvBatchDrainsQueuedBurst) {
  RealUdpSocket rx(0);
  RealUdpSocket tx(0);
  constexpr int kBurst = 5;
  for (int i = 0; i < kBurst; ++i) {
    const Buffer payload = pattern_payload(static_cast<std::uint64_t>(i),
                                           64 + static_cast<std::size_t>(i));
    tx.send_to(0, rx.port(), payload);
  }
  // Loopback delivery is synchronous by the time a blocking call runs, but
  // give the kernel a moment so the whole burst is queued before draining.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::vector<ReceivedDatagram> got;
  int calls = 0;
  while (got.size() < kBurst && calls < kBurst) {
    ++calls;
    auto batch = rx.recv_batch(std::chrono::milliseconds(1000));
    for (auto& d : batch) {
      got.push_back(std::move(d));
    }
  }
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kBurst));
  EXPECT_LT(calls, kBurst) << "burst was never batched";
  for (int i = 0; i < kBurst; ++i) {
    const auto& d = got[static_cast<std::size_t>(i)];
    EXPECT_EQ(d.data.size(), 64u + static_cast<std::size_t>(i));
    EXPECT_TRUE(check_pattern(static_cast<std::uint64_t>(i), d.data));
    EXPECT_EQ(d.src_port, tx.port());
  }
}

TEST(RealSocket, RecvBatchTimesOutEmpty) {
  RealUdpSocket rx(0);
  EXPECT_TRUE(rx.recv_batch(std::chrono::milliseconds(50)).empty());
}

TEST(RealSocket, RecvBatchRespectsMaxBatch) {
  RealUdpSocket rx(0);
  RealUdpSocket tx(0);
  for (int i = 0; i < 4; ++i) {
    const std::uint8_t byte[] = {static_cast<std::uint8_t>(i)};
    tx.send_to(0, rx.port(), byte);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const auto first = rx.recv_batch(std::chrono::milliseconds(1000), 2);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[0].data[0], 0);
  EXPECT_EQ(first[1].data[0], 1);
  const auto rest = rx.recv_batch(std::chrono::milliseconds(1000), 8);
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[0].data[0], 2);
  EXPECT_EQ(rest[1].data[0], 3);
}

// Kernel gather-send: header and payload handed to sendmsg as separate
// iovec parts must arrive as ONE datagram with the concatenated bytes.
TEST(RealSocket, SendPartsGathersOneDatagram) {
  RealUdpSocket rx(0);
  RealUdpSocket tx(0);
  const Buffer whole = pattern_payload(7, 300);
  const std::span<const std::uint8_t> view(whole);
  const std::span<const std::uint8_t> parts[] = {
      view.subspan(0, 10), view.subspan(10, 90), view.subspan(100)};
  tx.send_parts(0, rx.port(), parts);
  const auto got = rx.recv(std::chrono::milliseconds(1000));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->data.size(), 300u);
  EXPECT_TRUE(check_pattern(7, got->data));
}

// Zero-length parts (a scout with no payload) still produce a datagram.
TEST(RealSocket, SendPartsEmptyPayloadStillArrives) {
  RealUdpSocket rx(0);
  RealUdpSocket tx(0);
  const Buffer header = pattern_payload(8, 12);
  const std::span<const std::uint8_t> parts[] = {
      header, std::span<const std::uint8_t>{}};
  tx.send_parts(0, rx.port(), parts);
  const auto got = rx.recv(std::chrono::milliseconds(1000));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->data.size(), 12u);
  EXPECT_TRUE(check_pattern(8, got->data));
}

TEST(RealSocket, MulticastReachesJoinedSocket) {
  SKIP_WITHOUT_MULTICAST();
  constexpr std::uint32_t kGroup = 0xEF0101F0u;  // 239.1.1.240
  RealUdpSocket rx(0);
  rx.join_multicast(kGroup);
  RealUdpSocket tx(0);
  tx.join_multicast(kGroup);
  tx.send_to(kGroup, rx.port(), pattern_payload(2, 64));
  const auto got = rx.recv(std::chrono::milliseconds(1000));
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(check_pattern(2, got->data));
}

TEST(RealCluster, P2pMessagesQueuePerSource) {
  RealClusterConfig config;
  config.num_ranks = 3;
  RealCluster cluster(config);
  std::vector<int> ok(3, 1);
  cluster.run([&](RealRank& r) {
    if (r.rank() == 0) {
      // Both peers send; receive in the opposite order of arrival risk.
      const auto from2 = r.recv_p2p(2);
      const auto from1 = r.recv_p2p(1);
      ok[0] = check_pattern(22, from2) && check_pattern(11, from1);
    } else if (r.rank() == 1) {
      r.send_p2p(0, pattern_payload(11, 50));
    } else {
      r.send_p2p(0, pattern_payload(22, 50));
    }
  });
  EXPECT_TRUE(ok[0]);
}

TEST(RealCluster, BinaryBcastDeliversOnRealSockets) {
  SKIP_WITHOUT_MULTICAST();
  RealClusterConfig config;
  config.num_ranks = 4;
  config.mcast_group = 0xEF0101F1u;
  RealCluster cluster(config);
  std::vector<int> ok(4, 0);
  cluster.run([&](RealRank& r) {
    std::vector<std::uint8_t> data;
    if (r.rank() == 0) {
      data = pattern_payload(3, 2000);
    }
    r.bcast_binary(data, 0);
    ok[static_cast<std::size_t>(r.rank())] = check_pattern(3, data);
  });
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ok[static_cast<std::size_t>(i)]) << "rank " << i;
  }
}

TEST(RealCluster, LinearBcastDeliversOnRealSockets) {
  SKIP_WITHOUT_MULTICAST();
  RealClusterConfig config;
  config.num_ranks = 5;
  config.mcast_group = 0xEF0101F2u;
  RealCluster cluster(config);
  std::vector<int> ok(5, 0);
  cluster.run([&](RealRank& r) {
    std::vector<std::uint8_t> data;
    if (r.rank() == 2) {
      data = pattern_payload(4, 1000);
    }
    r.bcast_linear(data, 2);
    ok[static_cast<std::size_t>(r.rank())] = check_pattern(4, data);
  });
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(ok[static_cast<std::size_t>(i)]) << "rank " << i;
  }
}

TEST(RealCluster, BackToBackBroadcastsStayOrdered) {
  SKIP_WITHOUT_MULTICAST();
  RealClusterConfig config;
  config.num_ranks = 3;
  config.mcast_group = 0xEF0101F3u;
  RealCluster cluster(config);
  std::vector<int> ok(3, 1);
  cluster.run([&](RealRank& r) {
    for (int i = 0; i < 5; ++i) {
      std::vector<std::uint8_t> data;
      if (r.rank() == 0) {
        data = pattern_payload(static_cast<std::uint64_t>(i), 256);
      }
      r.bcast_binary(data, 0);
      if (!check_pattern(static_cast<std::uint64_t>(i), data)) {
        ok[static_cast<std::size_t>(r.rank())] = 0;
      }
    }
  });
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(ok[static_cast<std::size_t>(i)]) << "rank " << i;
  }
}

TEST(RealCluster, BarrierSynchronizesThreads) {
  SKIP_WITHOUT_MULTICAST();
  RealClusterConfig config;
  config.num_ranks = 4;
  config.mcast_group = 0xEF0101F4u;
  RealCluster cluster(config);
  std::atomic<int> entered{0};
  std::vector<int> seen_at_exit(4, 0);
  cluster.run([&](RealRank& r) {
    // Rank 3 arrives visibly late.
    if (r.rank() == 3) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    ++entered;
    r.barrier();
    seen_at_exit[static_cast<std::size_t>(r.rank())] = entered.load();
  });
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(seen_at_exit[static_cast<std::size_t>(i)], 4)
        << "rank " << i << " left the barrier before everyone entered";
  }
}

}  // namespace
}  // namespace mcmpi::posix
