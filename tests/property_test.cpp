// Property-based tests: randomized programs and parameter sweeps that must
// hold for *every* draw — cross-algorithm result equivalence, frame-count
// formulas at random points, fragmentation round-trips, and replay
// determinism of the full stack.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/experiment.hpp"
#include "coll/facade.hpp"
#include "common/bytes.hpp"
#include "common/rng.hpp"

namespace mcmpi {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::NetworkType;

// --------------------------------------------------------------------
// Property: for any random program of collectives, every broadcast
// algorithm produces byte-identical results on every rank.

struct ProgramStep {
  int op;        // 0 = bcast, 1 = barrier, 2 = allreduce
  int root;
  std::size_t payload;
  std::uint64_t pattern;
};

std::vector<ProgramStep> random_program(Rng& rng, int procs, int steps) {
  std::vector<ProgramStep> program;
  for (int i = 0; i < steps; ++i) {
    ProgramStep step;
    step.op = static_cast<int>(rng.below(3));
    step.root = static_cast<int>(rng.below(static_cast<std::uint64_t>(procs)));
    step.payload = rng.below(4000);
    step.pattern = rng();
    program.push_back(step);
  }
  return program;
}

/// Runs the program with the given bcast algorithm; returns a per-rank
/// digest of everything observed.
std::vector<std::uint64_t> run_program(const std::vector<ProgramStep>& program,
                                       int procs, NetworkType net,
                                       const std::string& algo) {
  ClusterConfig config;
  config.num_procs = procs;
  config.network = net;
  config.seed = 7;
  Cluster cluster(config);
  std::vector<std::uint64_t> digest(static_cast<std::size_t>(procs), 0);

  bool applicable = true;
  cluster.world().run([&](mpi::Proc& p) {
    const mpi::Comm comm = p.comm_world();
    {
      // Registry applicability (the hierarchical algorithms reject the
      // single-segment topology used here): every rank computes the same
      // verdict and backs out before entering any collective.
      const coll::CollAlgorithm& a =
          coll::Registry::instance().get(coll::CollOp::kBcast, algo);
      if (a.applicable && !a.applicable(comm, 0)) {
        applicable = false;
        return;
      }
    }
    std::uint64_t hash = 14695981039346656037ULL;
    auto mix = [&hash](std::span<const std::uint8_t> bytes) {
      for (std::uint8_t b : bytes) {
        hash = (hash ^ b) * 1099511628211ULL;
      }
    };
    for (const ProgramStep& step : program) {
      switch (step.op) {
        case 0: {
          Buffer data;
          if (p.rank() == step.root) {
            data = pattern_payload(step.pattern, step.payload);
          }
          comm.coll().bcast(data, step.root, algo);
          mix(data);
          break;
        }
        case 1:
          comm.coll().barrier("mcast");
          break;
        case 2: {
          const std::int64_t mine = static_cast<std::int64_t>(step.pattern % 1000) + p.rank();
          Buffer bytes(sizeof mine);
          std::memcpy(bytes.data(), &mine, sizeof mine);
          // Allreduce through the same broadcast stage when the registry
          // carries it; reliability-protocol stages fall back to mpich.
          const bool staged = coll::Registry::instance().find(
                                  coll::CollOp::kAllreduce, algo) != nullptr;
          const Buffer sum = comm.coll().allreduce(
              bytes, mpi::Op::kSum, mpi::Datatype::kInt64,
              staged ? algo : "mpich");
          mix(sum);
          break;
        }
        default:
          break;
      }
    }
    digest[static_cast<std::size_t>(p.rank())] = hash;
  });
  if (!applicable) {
    return {};  // caller skips the algorithm on this topology
  }
  return digest;
}

class RandomProgramEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(RandomProgramEquivalence, AllAlgorithmsAgree) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 0x9E3779B97F4A7C15ULL + 1);
  const int procs = 2 + static_cast<int>(rng.below(8));  // 2..9
  const NetworkType net =
      rng.chance(0.5) ? NetworkType::kHub : NetworkType::kSwitch;
  const auto program = random_program(rng, procs, 6);

  const auto reference = run_program(program, procs, net, "mpich");
  // All ranks agree with each other under the reference algorithm.
  for (std::uint64_t h : reference) {
    EXPECT_EQ(h, reference.front());
  }
  // Every registered broadcast algorithm must agree with the reference.
  for (const std::string& algo :
       coll::Registry::instance().names(coll::CollOp::kBcast)) {
    if (algo == "mpich") {
      continue;
    }
    const auto digest = run_program(program, procs, net, algo);
    if (digest.empty()) {
      continue;  // not applicable on this topology (e.g. hier, 1 segment)
    }
    EXPECT_EQ(digest, reference)
        << "algorithm " << algo << " diverged (procs=" << procs
        << ", net=" << cluster::to_string(net) << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Draws, RandomProgramEquivalence,
                         ::testing::Range(0, 12));

// --------------------------------------------------------------------
// Property: the §3.1 frame formulas hold at random (N, M) points.

class RandomFrameCounts : public ::testing::TestWithParam<int> {};

TEST_P(RandomFrameCounts, FormulasHoldEverywhere) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 0xF00D);
  const int procs = 2 + static_cast<int>(rng.below(8));
  const int payload = static_cast<int>(rng.below(9000));
  const std::uint64_t frames_per_message =
      static_cast<std::uint64_t>(payload) / 1472 + 1;
  const auto n = static_cast<std::uint64_t>(procs);

  auto count = [&](const std::string& algo) {
    ClusterConfig config;
    config.num_procs = procs;
    config.network = NetworkType::kSwitch;
    Cluster cluster(config);
    auto op = [&, algo](mpi::Proc& p) {
      Buffer data;
      if (p.rank() == 0) {
        data = pattern_payload(1, static_cast<std::size_t>(payload));
      }
      p.comm_world().coll().bcast(data, 0, algo);
    };
    return cluster::count_frames(cluster, op, op).formula_frames();
  };

  EXPECT_EQ(count("mpich"), frames_per_message * (n - 1))
      << "procs=" << procs << " payload=" << payload;
  EXPECT_EQ(count("mcast-binary"), (n - 1) + frames_per_message)
      << "procs=" << procs << " payload=" << payload;
}

INSTANTIATE_TEST_SUITE_P(Draws, RandomFrameCounts, ::testing::Range(0, 10));

// --------------------------------------------------------------------
// Property: reduce agrees with a locally computed reference for random
// vectors, operators and roots.

class RandomReduce : public ::testing::TestWithParam<int> {};

TEST_P(RandomReduce, MatchesLocalReference) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 0xBEEF);
  const int procs = 2 + static_cast<int>(rng.below(8));
  const int root = static_cast<int>(rng.below(static_cast<std::uint64_t>(procs)));
  const std::size_t count = 1 + rng.below(50);
  const mpi::Op op = rng.chance(0.5) ? mpi::Op::kSum : mpi::Op::kMax;

  // Deterministic per-rank vectors and the expected elementwise result.
  std::vector<std::vector<std::int64_t>> inputs(
      static_cast<std::size_t>(procs), std::vector<std::int64_t>(count));
  for (int r = 0; r < procs; ++r) {
    for (std::size_t i = 0; i < count; ++i) {
      inputs[static_cast<std::size_t>(r)][i] =
          static_cast<std::int64_t>(rng.below(1000)) - 500;
    }
  }
  std::vector<std::int64_t> expected = inputs[0];
  for (int r = 1; r < procs; ++r) {
    for (std::size_t i = 0; i < count; ++i) {
      const std::int64_t v = inputs[static_cast<std::size_t>(r)][i];
      expected[i] = op == mpi::Op::kSum ? expected[i] + v
                                        : std::max(expected[i], v);
    }
  }

  ClusterConfig config;
  config.num_procs = procs;
  config.network = NetworkType::kSwitch;
  Cluster cluster(config);
  std::vector<std::int64_t> result;
  cluster.world().run([&](mpi::Proc& p) {
    const auto& mine = inputs[static_cast<std::size_t>(p.rank())];
    Buffer bytes(count * sizeof(std::int64_t));
    std::memcpy(bytes.data(), mine.data(), bytes.size());
    const Buffer out = p.comm_world().coll().reduce(
        bytes, op, mpi::Datatype::kInt64, root, "mpich");
    if (p.rank() == root) {
      result.resize(count);
      std::memcpy(result.data(), out.data(), out.size());
    }
  });
  EXPECT_EQ(result, expected) << "procs=" << procs << " root=" << root;
}

INSTANTIATE_TEST_SUITE_P(Draws, RandomReduce, ::testing::Range(0, 10));

// --------------------------------------------------------------------
// Property: reduction-semantics conformance for random payload/op/datatype
// draws, across every registered algorithm —
//   * reduce at the root equals allreduce everywhere,
//   * scan at rank N-1 equals reduce at the root (and every rank's scan
//     equals the local rank-order prefix),
//   * gather-then-scatter round-trips every rank's block bit-identically.
// The local reference is built with mpi::apply_op in rank order, so the
// distributed paths are checked against MPI's canonical evaluation order.

struct ConformanceDraw {
  int procs;
  int root;
  mpi::Op op;
  mpi::Datatype type;
  std::size_t count;
  std::vector<Buffer> inputs;  // one operand per rank
};

ConformanceDraw make_conformance_draw(Rng& rng) {
  ConformanceDraw d;
  d.procs = 2 + static_cast<int>(rng.below(8));  // 2..9
  d.root = static_cast<int>(rng.below(static_cast<std::uint64_t>(d.procs)));
  const mpi::Datatype types[] = {mpi::Datatype::kByte, mpi::Datatype::kInt32,
                                 mpi::Datatype::kInt64,
                                 mpi::Datatype::kDouble};
  d.type = types[rng.below(4)];
  if (d.type == mpi::Datatype::kDouble) {
    // Doubles: only the exactly-associative ops (any combining order gives
    // bit-identical results; +/* would tie the test to evaluation order).
    d.op = rng.chance(0.5) ? mpi::Op::kMax : mpi::Op::kMin;
  } else {
    const mpi::Op ops[] = {mpi::Op::kSum, mpi::Op::kProd, mpi::Op::kMax,
                           mpi::Op::kMin, mpi::Op::kBand, mpi::Op::kBor};
    d.op = ops[rng.below(6)];
  }
  d.count = 1 + rng.below(64);
  const std::size_t width = mpi::datatype_size(d.type);
  for (int r = 0; r < d.procs; ++r) {
    Buffer operand(d.count * width);
    for (std::size_t i = 0; i < d.count; ++i) {
      // Small magnitudes keep kProd inside every integer width.
      const auto v = static_cast<std::int64_t>(rng.below(4));
      std::uint8_t* slot = operand.data() + i * width;
      switch (d.type) {
        case mpi::Datatype::kByte: {
          const auto b = static_cast<std::uint8_t>(v);
          std::memcpy(slot, &b, sizeof b);
          break;
        }
        case mpi::Datatype::kInt32: {
          const auto x = static_cast<std::int32_t>(v);
          std::memcpy(slot, &x, sizeof x);
          break;
        }
        case mpi::Datatype::kInt64: {
          std::memcpy(slot, &v, sizeof v);
          break;
        }
        case mpi::Datatype::kDouble: {
          const auto x = static_cast<double>(v);
          std::memcpy(slot, &x, sizeof x);
          break;
        }
      }
    }
    d.inputs.push_back(std::move(operand));
  }
  return d;
}

/// Rank-order prefix reference: result[r] = inputs[0] ∘ ... ∘ inputs[r],
/// built with the library's own elementwise kernel.
std::vector<Buffer> local_prefixes(const ConformanceDraw& d) {
  std::vector<Buffer> prefixes;
  Buffer acc = d.inputs[0];
  prefixes.push_back(acc);
  for (int r = 1; r < d.procs; ++r) {
    Buffer next = d.inputs[static_cast<std::size_t>(r)];
    mpi::apply_op(d.op, d.type, acc, next, d.count);
    acc = std::move(next);
    prefixes.push_back(acc);
  }
  return prefixes;
}

class ReductionConformance : public ::testing::TestWithParam<int> {};

TEST_P(ReductionConformance, ReduceScanGatherScatterAgree) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 0x2545F4914F6CDD1DULL +
          0xC0FFEE);
  const ConformanceDraw d = make_conformance_draw(rng);
  const std::vector<Buffer> prefixes = local_prefixes(d);
  const Buffer& expected = prefixes.back();
  const std::size_t bytes = d.inputs[0].size();

  ClusterConfig config;
  config.num_procs = d.procs;
  config.network = NetworkType::kSwitch;
  config.seed = 19;
  Cluster cluster(config);
  std::vector<std::string> errors;

  cluster.world().run([&](mpi::Proc& p) {
    const mpi::Comm comm = p.comm_world();
    coll::Coll coll = comm.coll();
    coll::Registry& r = coll::Registry::instance();
    const Buffer& mine = d.inputs[static_cast<std::size_t>(p.rank())];
    const auto note = [&](const std::string& what) {
      errors.push_back(what + " (procs=" + std::to_string(d.procs) +
                       ", root=" + std::to_string(d.root) +
                       ", op=" + std::to_string(static_cast<int>(d.op)) +
                       ", type=" + std::to_string(static_cast<int>(d.type)) +
                       ", rank=" + std::to_string(p.rank()) + ")");
    };

    // Reduce at the root == allreduce everywhere.
    const Buffer everywhere =
        coll.allreduce(mine, d.op, d.type, "mpich");
    if (everywhere != expected) {
      note("allreduce reference diverged from the local prefix");
    }
    for (const std::string& algo :
         r.applicable_names(coll::CollOp::kReduce, comm, bytes)) {
      const Buffer out = coll.reduce(mine, d.op, d.type, d.root, algo);
      if (p.rank() == d.root) {
        if (out != expected) {
          note("reduce/" + algo + " != allreduce");
        }
      } else if (!out.empty()) {
        note("reduce/" + algo + " non-root result not empty");
      }
    }

    // Scan at rank N-1 == reduce at the root; every rank matches its
    // rank-order prefix.
    for (const std::string& algo :
         r.applicable_names(coll::CollOp::kScan, comm, bytes)) {
      const Buffer out = coll.scan(mine, d.op, d.type, algo);
      if (out != prefixes[static_cast<std::size_t>(p.rank())]) {
        note("scan/" + algo + " prefix mismatch");
      }
      if (p.rank() == d.procs - 1 && out != expected) {
        note("scan/" + algo + " at rank N-1 != reduce");
      }
    }

    // Gather-then-scatter round-trips bit-identically, for every pairing
    // of gather and scatter algorithms.
    for (const std::string& gather_algo :
         r.applicable_names(coll::CollOp::kGather, comm, bytes)) {
      const auto blocks = coll.gather(mine, d.root, gather_algo);
      if (p.rank() == d.root &&
          blocks.size() != static_cast<std::size_t>(d.procs)) {
        // Record but keep participating in the scatter pairings below —
        // skipping them on the root alone would desynchronize the
        // collectives and hang the test instead of failing it.
        note("gather/" + gather_algo + " block count");
      }
      for (const std::string& scatter_algo :
           r.applicable_names(coll::CollOp::kScatter, comm, bytes)) {
        const Buffer back =
            coll.scatter(blocks, d.root, bytes, scatter_algo);
        if (back != mine) {
          note("gather/" + gather_algo + " -> scatter/" + scatter_algo +
               " did not round-trip");
        }
      }
    }
  });

  for (const std::string& error : errors) {
    ADD_FAILURE() << error;
  }
}

INSTANTIATE_TEST_SUITE_P(Draws, ReductionConformance, ::testing::Range(0, 10));

// --------------------------------------------------------------------
// Property: whole-stack replay determinism — the same seed gives the same
// latencies even through collisions and retransmissions.

class ReplayDeterminism : public ::testing::TestWithParam<int> {};

TEST_P(ReplayDeterminism, IdenticalAcrossRuns) {
  auto run = [&] {
    ClusterConfig config;
    config.num_procs = 6;
    config.network = NetworkType::kHub;  // collisions make this the hard case
    config.seed = static_cast<std::uint64_t>(GetParam());
    Cluster cluster(config);
    cluster::ExperimentConfig exp;
    exp.reps = 8;
    return cluster::measure_collective(
               cluster, exp,
               [](mpi::Proc& p, int rep) {
                 Buffer data;
                 if (p.rank() == 0) {
                   data = pattern_payload(static_cast<std::uint64_t>(rep), 2500);
                 }
                 p.comm_world().coll().bcast(data, 0, "mcast-binary");
               })
        .latencies_us.values();
  };
  EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplayDeterminism, ::testing::Range(1, 5));

}  // namespace
}  // namespace mcmpi
