// Property-based tests: randomized programs and parameter sweeps that must
// hold for *every* draw — cross-algorithm result equivalence, frame-count
// formulas at random points, fragmentation round-trips, and replay
// determinism of the full stack.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/experiment.hpp"
#include "coll/facade.hpp"
#include "coll/mpich.hpp"
#include "common/bytes.hpp"
#include "common/rng.hpp"

namespace mcmpi {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::NetworkType;

// --------------------------------------------------------------------
// Property: for any random program of collectives, every broadcast
// algorithm produces byte-identical results on every rank.

struct ProgramStep {
  int op;        // 0 = bcast, 1 = barrier, 2 = allreduce
  int root;
  std::size_t payload;
  std::uint64_t pattern;
};

std::vector<ProgramStep> random_program(Rng& rng, int procs, int steps) {
  std::vector<ProgramStep> program;
  for (int i = 0; i < steps; ++i) {
    ProgramStep step;
    step.op = static_cast<int>(rng.below(3));
    step.root = static_cast<int>(rng.below(static_cast<std::uint64_t>(procs)));
    step.payload = rng.below(4000);
    step.pattern = rng();
    program.push_back(step);
  }
  return program;
}

/// Runs the program with the given bcast algorithm; returns a per-rank
/// digest of everything observed.
std::vector<std::uint64_t> run_program(const std::vector<ProgramStep>& program,
                                       int procs, NetworkType net,
                                       const std::string& algo) {
  ClusterConfig config;
  config.num_procs = procs;
  config.network = net;
  config.seed = 7;
  Cluster cluster(config);
  std::vector<std::uint64_t> digest(static_cast<std::size_t>(procs), 0);

  cluster.world().run([&](mpi::Proc& p) {
    const mpi::Comm comm = p.comm_world();
    std::uint64_t hash = 14695981039346656037ULL;
    auto mix = [&hash](std::span<const std::uint8_t> bytes) {
      for (std::uint8_t b : bytes) {
        hash = (hash ^ b) * 1099511628211ULL;
      }
    };
    for (const ProgramStep& step : program) {
      switch (step.op) {
        case 0: {
          Buffer data;
          if (p.rank() == step.root) {
            data = pattern_payload(step.pattern, step.payload);
          }
          comm.coll().bcast(data, step.root, algo);
          mix(data);
          break;
        }
        case 1:
          comm.coll().barrier("mcast");
          break;
        case 2: {
          const std::int64_t mine = static_cast<std::int64_t>(step.pattern % 1000) + p.rank();
          Buffer bytes(sizeof mine);
          std::memcpy(bytes.data(), &mine, sizeof mine);
          // Allreduce through the same broadcast stage when the registry
          // carries it; reliability-protocol stages fall back to mpich.
          const bool staged = coll::Registry::instance().find(
                                  coll::CollOp::kAllreduce, algo) != nullptr;
          const Buffer sum = comm.coll().allreduce(
              bytes, mpi::Op::kSum, mpi::Datatype::kInt64,
              staged ? algo : "mpich");
          mix(sum);
          break;
        }
        default:
          break;
      }
    }
    digest[static_cast<std::size_t>(p.rank())] = hash;
  });
  return digest;
}

class RandomProgramEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(RandomProgramEquivalence, AllAlgorithmsAgree) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 0x9E3779B97F4A7C15ULL + 1);
  const int procs = 2 + static_cast<int>(rng.below(8));  // 2..9
  const NetworkType net =
      rng.chance(0.5) ? NetworkType::kHub : NetworkType::kSwitch;
  const auto program = random_program(rng, procs, 6);

  const auto reference = run_program(program, procs, net, "mpich");
  // All ranks agree with each other under the reference algorithm.
  for (std::uint64_t h : reference) {
    EXPECT_EQ(h, reference.front());
  }
  // Every registered broadcast algorithm must agree with the reference.
  for (const std::string& algo :
       coll::Registry::instance().names(coll::CollOp::kBcast)) {
    if (algo == "mpich") {
      continue;
    }
    const auto digest = run_program(program, procs, net, algo);
    EXPECT_EQ(digest, reference)
        << "algorithm " << algo << " diverged (procs=" << procs
        << ", net=" << cluster::to_string(net) << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Draws, RandomProgramEquivalence,
                         ::testing::Range(0, 12));

// --------------------------------------------------------------------
// Property: the §3.1 frame formulas hold at random (N, M) points.

class RandomFrameCounts : public ::testing::TestWithParam<int> {};

TEST_P(RandomFrameCounts, FormulasHoldEverywhere) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 0xF00D);
  const int procs = 2 + static_cast<int>(rng.below(8));
  const int payload = static_cast<int>(rng.below(9000));
  const std::uint64_t frames_per_message =
      static_cast<std::uint64_t>(payload) / 1472 + 1;
  const auto n = static_cast<std::uint64_t>(procs);

  auto count = [&](const std::string& algo) {
    ClusterConfig config;
    config.num_procs = procs;
    config.network = NetworkType::kSwitch;
    Cluster cluster(config);
    auto op = [&, algo](mpi::Proc& p) {
      Buffer data;
      if (p.rank() == 0) {
        data = pattern_payload(1, static_cast<std::size_t>(payload));
      }
      p.comm_world().coll().bcast(data, 0, algo);
    };
    return cluster::count_frames(cluster, op, op).formula_frames();
  };

  EXPECT_EQ(count("mpich"), frames_per_message * (n - 1))
      << "procs=" << procs << " payload=" << payload;
  EXPECT_EQ(count("mcast-binary"), (n - 1) + frames_per_message)
      << "procs=" << procs << " payload=" << payload;
}

INSTANTIATE_TEST_SUITE_P(Draws, RandomFrameCounts, ::testing::Range(0, 10));

// --------------------------------------------------------------------
// Property: reduce agrees with a locally computed reference for random
// vectors, operators and roots.

class RandomReduce : public ::testing::TestWithParam<int> {};

TEST_P(RandomReduce, MatchesLocalReference) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 0xBEEF);
  const int procs = 2 + static_cast<int>(rng.below(8));
  const int root = static_cast<int>(rng.below(static_cast<std::uint64_t>(procs)));
  const std::size_t count = 1 + rng.below(50);
  const mpi::Op op = rng.chance(0.5) ? mpi::Op::kSum : mpi::Op::kMax;

  // Deterministic per-rank vectors and the expected elementwise result.
  std::vector<std::vector<std::int64_t>> inputs(
      static_cast<std::size_t>(procs), std::vector<std::int64_t>(count));
  for (int r = 0; r < procs; ++r) {
    for (std::size_t i = 0; i < count; ++i) {
      inputs[static_cast<std::size_t>(r)][i] =
          static_cast<std::int64_t>(rng.below(1000)) - 500;
    }
  }
  std::vector<std::int64_t> expected = inputs[0];
  for (int r = 1; r < procs; ++r) {
    for (std::size_t i = 0; i < count; ++i) {
      const std::int64_t v = inputs[static_cast<std::size_t>(r)][i];
      expected[i] = op == mpi::Op::kSum ? expected[i] + v
                                        : std::max(expected[i], v);
    }
  }

  ClusterConfig config;
  config.num_procs = procs;
  config.network = NetworkType::kSwitch;
  Cluster cluster(config);
  std::vector<std::int64_t> result;
  cluster.world().run([&](mpi::Proc& p) {
    const auto& mine = inputs[static_cast<std::size_t>(p.rank())];
    Buffer bytes(count * sizeof(std::int64_t));
    std::memcpy(bytes.data(), mine.data(), bytes.size());
    const Buffer out = coll::reduce_mpich(p, p.comm_world(), bytes, op,
                                          mpi::Datatype::kInt64, root);
    if (p.rank() == root) {
      result.resize(count);
      std::memcpy(result.data(), out.data(), out.size());
    }
  });
  EXPECT_EQ(result, expected) << "procs=" << procs << " root=" << root;
}

INSTANTIATE_TEST_SUITE_P(Draws, RandomReduce, ::testing::Range(0, 10));

// --------------------------------------------------------------------
// Property: whole-stack replay determinism — the same seed gives the same
// latencies even through collisions and retransmissions.

class ReplayDeterminism : public ::testing::TestWithParam<int> {};

TEST_P(ReplayDeterminism, IdenticalAcrossRuns) {
  auto run = [&] {
    ClusterConfig config;
    config.num_procs = 6;
    config.network = NetworkType::kHub;  // collisions make this the hard case
    config.seed = static_cast<std::uint64_t>(GetParam());
    Cluster cluster(config);
    cluster::ExperimentConfig exp;
    exp.reps = 8;
    return cluster::measure_collective(
               cluster, exp,
               [](mpi::Proc& p, int rep) {
                 Buffer data;
                 if (p.rank() == 0) {
                   data = pattern_payload(static_cast<std::uint64_t>(rep), 2500);
                 }
                 p.comm_world().coll().bcast(data, 0, "mcast-binary");
               })
        .latencies_us.values();
  };
  EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplayDeterminism, ::testing::Range(1, 5));

}  // namespace
}  // namespace mcmpi
