// Tests for the paper's §4 safety discussion and assorted failure
// injection: multiple multicast groups, program-order delivery, loss under
// every reliability protocol, and hub pathologies.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/experiment.hpp"
#include "coll/ack_mcast.hpp"
#include "coll/facade.hpp"
#include "coll/sequencer.hpp"
#include "common/bytes.hpp"
#include "net/hub.hpp"

namespace mcmpi {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::NetworkType;

ClusterConfig config_for(int procs, NetworkType net = NetworkType::kSwitch) {
  ClusterConfig config;
  config.num_procs = procs;
  config.network = net;
  config.seed = 31;
  return config;
}

// ---------------------------------------------------------------------
// §4: "when there are two or more multicast groups that a process receives
// from, the order of broadcast will be correct as long as the MPI code is
// safe."  Two sub-communicators = two class-D groups; a rank in both
// receives from both in program order.

TEST(TwoGroups, OverlappingCommunicatorsStayOrdered) {
  constexpr int kProcs = 6;
  Cluster cluster(config_for(kProcs));
  std::vector<std::vector<int>> observed(kProcs);

  cluster.world().run([&](mpi::Proc& p) {
    const mpi::Comm world = p.comm_world();
    // Group A: ranks {0,1,2,3}; group B: ranks {2,3,4,5}.  Ranks 2 and 3
    // belong to both multicast groups.
    const bool in_a = p.rank() <= 3;
    const bool in_b = p.rank() >= 2;
    const mpi::Comm comm_a = p.split(world, in_a ? 0 : -1, p.rank());
    const mpi::Comm comm_b = p.split(world, in_b ? 0 : -1, p.rank());

    for (int round = 0; round < 3; ++round) {
      if (in_a) {
        Buffer data;
        if (comm_a.rank() == 0) {
          data = {static_cast<std::uint8_t>(10 + round)};
        }
        comm_a.coll().bcast(data, 0, "mcast-binary");
        observed[static_cast<std::size_t>(p.rank())].push_back(data.at(0));
      }
      if (in_b) {
        Buffer data;
        if (comm_b.rank() == 0) {
          data = {static_cast<std::uint8_t>(20 + round)};
        }
        comm_b.coll().bcast(data, 0, "mcast-linear");
        observed[static_cast<std::size_t>(p.rank())].push_back(data.at(0));
      }
    }
  });

  // Ranks 2 and 3 see strict interleaving A0 B0 A1 B1 A2 B2.
  const std::vector<int> both{10, 20, 11, 21, 12, 22};
  EXPECT_EQ(observed[2], both);
  EXPECT_EQ(observed[3], both);
  // Pure-A ranks see A rounds only; pure-B ranks B rounds only.
  EXPECT_EQ(observed[0], (std::vector<int>{10, 11, 12}));
  EXPECT_EQ(observed[5], (std::vector<int>{20, 21, 22}));
}

// The §4 code example: broadcasts rooted at three different processes of
// one group, executed in the same order everywhere, deliver in that order
// even with maximal skew between the roots.
TEST(TwoGroups, PaperSection4ExampleWithSkew) {
  constexpr int kProcs = 4;
  Cluster cluster(config_for(kProcs, NetworkType::kHub));
  std::vector<std::vector<int>> order(kProcs);

  cluster.world().run([&](mpi::Proc& p) {
    const mpi::Comm comm = p.comm_world();
    // Aggressive, rank-dependent skew before every call.
    for (int root = 1; root <= 3; ++root) {
      p.self().delay(microseconds(137) * ((p.rank() * 7 + root * 3) % 5));
      Buffer data;
      if (p.rank() == root) {
        data = {static_cast<std::uint8_t>(root)};
      }
      comm.coll().bcast(data, root, "mcast-binary");
      order[static_cast<std::size_t>(p.rank())].push_back(data.at(0));
    }
  });
  for (int r = 0; r < kProcs; ++r) {
    EXPECT_EQ(order[static_cast<std::size_t>(r)], (std::vector<int>{1, 2, 3}))
        << "rank " << r;
  }
}

// ---------------------------------------------------------------------
// Failure injection across the reliability protocols.

// Scout-synchronized multicast assumes reliable hardware (paper §2).  If a
// data frame is lost anyway, receivers hang — the failure mode is loud
// (deadlock detection), not silent corruption.
TEST(LossInjection, ScoutProtocolHangsLoudlyOnDataLoss) {
  constexpr int kProcs = 3;
  Cluster cluster(config_for(kProcs));
  cluster.network().set_drop_hook(
      [](const net::Frame& f, const net::Nic&) {
        return f.kind == net::FrameKind::kData && f.dst.is_multicast();
      });
  EXPECT_THROW(
      cluster.world().run([&](mpi::Proc& p) {
        Buffer data;
        if (p.rank() == 0) {
          data = pattern_payload(1, 100);
        }
        p.comm_world().coll().bcast(data, 0, "mcast-binary");
      }),
      sim::DeadlockError);
}

// The ACK protocol recovers from the same loss by retransmission.
TEST(LossInjection, AckMcastSurvivesMulticastLoss) {
  constexpr int kProcs = 3;
  Cluster cluster(config_for(kProcs));
  int dropped = 0;
  cluster.network().set_drop_hook(
      [&dropped](const net::Frame& f, const net::Nic&) {
        if (f.kind == net::FrameKind::kData && f.dst.is_multicast() &&
            dropped < 2) {
          ++dropped;
          return true;
        }
        return false;
      });
  std::vector<int> ok(kProcs, 0);
  cluster.world().run([&](mpi::Proc& p) {
    Buffer data;
    if (p.rank() == 0) {
      data = pattern_payload(1, 100);
    }
    coll::bcast_ack_mcast(p, p.comm_world(), data, 0);
    ok[static_cast<std::size_t>(p.rank())] = check_pattern(1, data);
  });
  for (int r = 0; r < kProcs; ++r) {
    EXPECT_TRUE(ok[static_cast<std::size_t>(r)]) << "rank " << r;
  }
  EXPECT_EQ(dropped, 2);
}

// The sequencer protocol recovers via receiver NACKs.
TEST(LossInjection, SequencerRecoversViaNack) {
  constexpr int kProcs = 4;
  Cluster cluster(config_for(kProcs));
  int dropped = 0;
  cluster.network().set_drop_hook(
      [&dropped](const net::Frame& f, const net::Nic& receiver) {
        // Lose the first multicast data frame, for receiver rank 2 only.
        if (f.kind == net::FrameKind::kData && f.dst.is_multicast() &&
            receiver.mac() == net::MacAddr::host(2) && dropped < 1) {
          ++dropped;
          return true;
        }
        return false;
      });
  std::vector<int> ok(kProcs, 0);
  std::uint64_t nacks = 0;
  cluster.world().run([&](mpi::Proc& p) {
    Buffer data;
    if (p.rank() == 1) {
      data = pattern_payload(5, 700);
    }
    coll::bcast_sequencer(p, p.comm_world(), data, 1);
    ok[static_cast<std::size_t>(p.rank())] = check_pattern(5, data);
    if (p.rank() == 2) {
      nacks = coll::sequencer_stats(p, p.comm_world()).nacks_sent;
    }
  });
  for (int r = 0; r < kProcs; ++r) {
    EXPECT_TRUE(ok[static_cast<std::size_t>(r)]) << "rank " << r;
  }
  EXPECT_GE(nacks, 1u);
  EXPECT_EQ(dropped, 1);
}

// MPICH over the reliable transport shrugs off even heavy loss.
// (Random loss, not modulo-counter loss: before the switch learns rank 4's
// port, its frames are *flooded* to four ports, and a global every-4th-
// delivery drop rule aligns perfectly with the flood — deterministically
// killing the same receiver's copy forever.  A great demonstration of
// deterministic-simulation livelock, and not what this test is about.)
TEST(LossInjection, MpichBcastSurvivesHeavyFrameLoss) {
  constexpr int kProcs = 5;
  Cluster cluster(config_for(kProcs));
  Rng loss_rng(1234);
  cluster.network().set_drop_hook(
      [&loss_rng](const net::Frame& f, const net::Nic&) {
        return f.kind == net::FrameKind::kData && loss_rng.chance(0.25);
      });
  std::vector<int> ok(kProcs, 0);
  cluster.world().run([&](mpi::Proc& p) {
    Buffer data;
    if (p.rank() == 0) {
      data = pattern_payload(9, 4000);
    }
    p.comm_world().coll().bcast(data, 0, "mpich");
    ok[static_cast<std::size_t>(p.rank())] = check_pattern(9, data);
  });
  for (int r = 0; r < kProcs; ++r) {
    EXPECT_TRUE(ok[static_cast<std::size_t>(r)]) << "rank " << r;
  }
}

// ---------------------------------------------------------------------
// Scheduler backends at cluster scale: the deadlock / teardown paths and
// the simulated timings must be identical under fibers and threads.

class BackendSafetyTest
    : public ::testing::TestWithParam<sim::ExecutionBackend> {};

INSTANTIATE_TEST_SUITE_P(Backends, BackendSafetyTest,
                         ::testing::Values(sim::ExecutionBackend::kFiber,
                                           sim::ExecutionBackend::kThread),
                         [](const auto& info) {
                           return std::string(sim::to_string(info.param));
                         });

// Data loss under the scout protocol deadlocks loudly, then the cluster
// tears down with every rank still parked mid-collective — on both
// backends the unwind must be clean (ASan/LSan would flag leaks or
// use-after-free here).
TEST_P(BackendSafetyTest, ScoutDeadlockThenTeardownUnwindsAllRanks) {
  constexpr int kProcs = 4;
  ClusterConfig config = config_for(kProcs);
  config.sim_backend = GetParam();
  Cluster cluster(config);
  cluster.network().set_drop_hook(
      [](const net::Frame& f, const net::Nic&) {
        return f.kind == net::FrameKind::kData && f.dst.is_multicast();
      });
  try {
    cluster.world().run([&](mpi::Proc& p) {
      Buffer data;
      if (p.rank() == 0) {
        data = pattern_payload(1, 256);
      }
      p.comm_world().coll().bcast(data, 0, "mcast-binary");
    });
    FAIL() << "expected DeadlockError";
  } catch (const sim::DeadlockError& e) {
    // Every receiver rank is parked waiting for the lost data frame.
    for (int r = 1; r < kProcs; ++r) {
      EXPECT_NE(std::string(e.what()).find("rank" + std::to_string(r)),
                std::string::npos)
          << e.what();
    }
  }
  // Cluster destruction here unwinds the parked ranks (the test passing
  // under the sanitize label is the assertion).
}

// The fiber fast paths (coalesced delays, charged wakes, batched fan-out)
// must not shift simulated time by a nanosecond: a full collective
// experiment measures identically on both backends.
TEST(BackendEquivalence, ClusterCollectiveTimingsMatchThreadOracle) {
  auto measure = [](sim::ExecutionBackend backend) {
    ClusterConfig config = config_for(5);
    config.sim_backend = backend;
    Cluster cluster(config);
    cluster::ExperimentConfig exp;
    exp.reps = 5;
    const auto result = cluster::measure_collective(
        cluster, exp, [](mpi::Proc& p, int) {
          Buffer data;
          if (p.rank() == 0) {
            data = pattern_payload(3, 2000);
          }
          p.comm_world().coll().bcast(data, 0, "mcast-linear");
        });
    return std::make_pair(result.latencies_us.median(),
                          cluster.simulator().events_executed());
  };
  const auto fiber = measure(sim::ExecutionBackend::kFiber);
  const auto thread = measure(sim::ExecutionBackend::kThread);
  EXPECT_EQ(fiber.first, thread.first) << "simulated medians must match";
  EXPECT_EQ(fiber.second, thread.second) << "event histories must match";
}

// ---------------------------------------------------------------------
// Hub pathologies.

TEST(HubPathology, ExcessiveCollisionsDropFrames) {
  // With an absurdly low attempt limit and many synchronized senders, the
  // interface gives up on some frames (counted, not silent).
  sim::Simulator sim(3);
  net::Hub::Params params;
  params.max_attempts = 1;
  net::Hub hub(sim, params);
  std::vector<std::unique_ptr<net::Nic>> nics;
  int delivered = 0;
  for (int i = 0; i < 4; ++i) {
    nics.push_back(std::make_unique<net::Nic>(
        sim, net::MacAddr::host(static_cast<std::uint32_t>(i)),
        "n" + std::to_string(i)));
    nics.back()->attach_to(hub);
    nics.back()->set_rx_handler([&](const net::Frame&) { ++delivered; });
  }
  // All three stations fire at the same instant, repeatedly.
  for (int burst = 0; burst < 10; ++burst) {
    sim.schedule_at(milliseconds(burst), [&] {
      for (int i = 1; i < 4; ++i) {
        net::Frame f;
        f.dst = net::MacAddr::host(0);
        f.payload = PayloadRef(Buffer(64, 0xEE));
        nics[static_cast<std::size_t>(i)]->send(std::move(f));
      }
    });
  }
  sim.run();
  EXPECT_GT(hub.counters().excessive_collision_drops, 0u);
  EXPECT_GT(hub.counters().collisions, 0u);
}

TEST(HubPathology, CollisionsNeverCorruptDeliveredCollectives) {
  // Run many hub broadcasts under heavy contention (9 procs, binary
  // scouts) and verify payload integrity every time.
  constexpr int kProcs = 9;
  Cluster cluster(config_for(kProcs, NetworkType::kHub));
  std::vector<int> failures(kProcs, 0);
  cluster.world().run([&](mpi::Proc& p) {
    const mpi::Comm comm = p.comm_world();
    for (int i = 0; i < 10; ++i) {
      Buffer data;
      if (p.rank() == 0) {
        data = pattern_payload(static_cast<std::uint64_t>(i), 1000 + i * 100);
      }
      comm.coll().bcast(data, 0, "mcast-binary");
      if (!check_pattern(static_cast<std::uint64_t>(i), data)) {
        failures[static_cast<std::size_t>(p.rank())] = 1;
      }
    }
  });
  const auto& counters = cluster.network().counters();
  EXPECT_GT(counters.collisions, 0u) << "contention should exist";
  for (int r = 0; r < kProcs; ++r) {
    EXPECT_EQ(failures[static_cast<std::size_t>(r)], 0) << "rank " << r;
  }
}

// ---------------------------------------------------------------------
// Slow-receiver overrun at the single-receiver level (paper §2, third
// unreliability problem): repeated broadcasts into a rank that never
// consumes them eventually overflow its channel buffer.

TEST(SlowReceiver, UnconsumedBroadcastsOverflowTheChannelBuffer) {
  constexpr int kProcs = 3;
  ClusterConfig config = config_for(kProcs);
  config.mcast_rcvbuf_bytes = 4096;
  Cluster cluster(config);
  std::uint64_t drops = 0;

  cluster.world().run([&](mpi::Proc& p) {
    const mpi::Comm comm = p.comm_world();
    if (p.rank() == 2) {
      // Joins the group (channel exists) but never receives.
      auto& ch = p.mcast_channel(comm);
      p.self().delay(milliseconds(50));
      drops = ch.socket().dropped_on_full();
      return;
    }
    // Ranks 0 and 1 exchange ten 1400-byte broadcasts among themselves
    // using the raw channel (rank 2 is a group member but silent).
    auto& ch = p.mcast_channel(comm);
    for (int i = 0; i < 10 && p.rank() == 0; ++i) {
      Buffer framed = pattern_payload(static_cast<std::uint64_t>(i), 1400);
      ch.send(PayloadRef(std::move(framed)), net::FrameKind::kData);
      p.self().delay(microseconds(200));
    }
    if (p.rank() == 1) {
      for (int i = 0; i < 10; ++i) {
        (void)ch.socket().recv(p.self());
      }
    }
  });
  EXPECT_GT(drops, 0u)
      << "a receiver that stops reading must lose datagrams once its "
         "buffer fills";
}

}  // namespace
}  // namespace mcmpi
