// Conformance and pipelining tests for the segmented multicast
// collectives (coll/segmented.hpp): bit-identical results against the
// point-to-point references across chunk/window/lane sweeps (including
// ragged final chunks and jumbo payloads past the single-datagram
// ceiling), duplicated/split communicators, sliding-window overlap
// visible in the chunk counters, and the kAuto fall-through that routes
// jumbo payloads onto the segmented engine.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "coll/facade.hpp"
#include "coll/limits.hpp"
#include "coll/segmented.hpp"
#include "common/bytes.hpp"

namespace mcmpi {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::NetworkType;

ClusterConfig config_for(int procs, NetworkType net = NetworkType::kSwitch,
                         int segments = 1) {
  ClusterConfig config;
  config.num_procs = procs;
  config.network = net;
  config.num_segments = segments;
  config.seed = 11;
  return config;
}

// --------------------------------------------------------------- bcast

struct BcastCase {
  int procs;
  std::size_t bytes;
  std::size_t chunk;
  int window;
  int lanes;
  int root;
  NetworkType net;
};

coll::SegmentedConfig seg_config(std::size_t chunk, int window, int lanes) {
  coll::SegmentedConfig cfg;
  cfg.chunk_bytes = chunk;
  cfg.window = window;
  cfg.lanes = lanes;
  return cfg;
}

// Runs one bcast on a fresh cluster and returns every rank's buffer.
std::vector<Buffer> run_bcast(const BcastCase& c, const std::string& algo) {
  Cluster cluster(config_for(c.procs, c.net));
  std::vector<Buffer> outs(static_cast<std::size_t>(c.procs));
  cluster.world().run([&](mpi::Proc& p) {
    if (algo == "mcast-segmented") {
      coll::set_segmented_config(p, p.comm_world(),
                                 seg_config(c.chunk, c.window, c.lanes));
    }
    Buffer buffer;
    if (p.rank() == c.root) {
      buffer = pattern_payload(0xB0CA57, c.bytes);
    }
    p.comm_world().coll().bcast(buffer, c.root, algo);
    outs[static_cast<std::size_t>(p.rank())] = std::move(buffer);
  });
  return outs;
}

class SegmentedBcast : public ::testing::TestWithParam<BcastCase> {};

TEST_P(SegmentedBcast, BitIdenticalToMpich) {
  const BcastCase c = GetParam();
  const auto seg = run_bcast(c, "mcast-segmented");
  const auto ref = run_bcast(c, "mpich");
  for (int r = 0; r < c.procs; ++r) {
    const Buffer& got = seg[static_cast<std::size_t>(r)];
    EXPECT_EQ(got.size(), c.bytes) << "rank " << r;
    EXPECT_TRUE(check_pattern(0xB0CA57, got)) << "rank " << r;
    EXPECT_EQ(got, ref[static_cast<std::size_t>(r)]) << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ChunkWindowLaneSweep, SegmentedBcast,
    ::testing::Values(
        // Ragged final chunk: 3000 = 2 x 1024 + 952.
        BcastCase{2, 3000, 1024, 1, 1, 0, NetworkType::kSwitch},
        // Deep pipeline, 25 chunks, non-zero root.
        BcastCase{3, 100000, 4096, 4, 1, 1, NetworkType::kSwitch},
        // 1 MiB: four single-shot ceilings past kMaxMcastDatagram.
        BcastCase{9, 1 << 20, 65536, 4, 1, 0, NetworkType::kSwitch},
        // Same payload striped over 4 lanes.
        BcastCase{9, 1 << 20, 65536, 4, 4, 0, NetworkType::kSwitch},
        // Exact multiple of the chunk size (no ragged tail).
        BcastCase{5, 262144, 65536, 2, 2, 2, NetworkType::kSwitch},
        // Chunks past 64 KiB ride simulated jumbo UDP datagrams.
        BcastCase{3, 1 << 20, 200000, 1, 1, 0, NetworkType::kSwitch},
        // Single byte, single chunk.
        BcastCase{2, 1, 7, 1, 1, 1, NetworkType::kSwitch},
        // Empty payload still synchronizes and completes.
        BcastCase{3, 0, 1024, 2, 1, 0, NetworkType::kSwitch},
        // Hub topology, striped window.
        BcastCase{5, 50000, 8192, 2, 2, 0, NetworkType::kHub}),
    [](const auto& info) {
      const BcastCase& c = info.param;
      return "p" + std::to_string(c.procs) + "_b" + std::to_string(c.bytes) +
             "_c" + std::to_string(c.chunk) + "_w" +
             std::to_string(c.window) + "_l" + std::to_string(c.lanes) +
             "_r" + std::to_string(c.root) + "_" + cluster::to_string(c.net);
    });

TEST(SegmentedBcastTopology, MultiSegmentJumboBcast) {
  constexpr int kProcs = 16;
  constexpr std::size_t kBytes = 1 << 20;
  ClusterConfig config = config_for(kProcs, NetworkType::kSwitch, 2);
  config.hosts = cluster::make_uniform_hosts(kProcs);
  Cluster cluster(config);
  std::vector<int> ok(kProcs, 0);
  cluster.world().run([&](mpi::Proc& p) {
    coll::set_segmented_config(p, p.comm_world(), seg_config(65536, 4, 2));
    Buffer buffer;
    if (p.rank() == 0) {
      buffer = pattern_payload(42, kBytes);
    }
    p.comm_world().coll().bcast(buffer, 0, "mcast-segmented");
    ok[static_cast<std::size_t>(p.rank())] =
        buffer.size() == kBytes && check_pattern(42, buffer);
  });
  for (int r = 0; r < kProcs; ++r) {
    EXPECT_TRUE(ok[static_cast<std::size_t>(r)]) << "rank " << r;
  }
}

// Chunks larger than 64 KiB cannot carry their true length in the 16-bit
// UDP wire field: the stack writes the jumbogram marker and counts the
// datagram.  A 1 MiB broadcast in 200 kB chunks must ride that path.
TEST(SegmentedBcastJumbo, ChunksRideJumboUdpDatagrams) {
  constexpr int kProcs = 3;
  Cluster cluster(config_for(kProcs));
  std::uint64_t root_jumbo = 0;
  cluster.world().run([&](mpi::Proc& p) {
    coll::set_segmented_config(p, p.comm_world(), seg_config(200000, 1, 1));
    Buffer buffer;
    if (p.rank() == 0) {
      buffer = pattern_payload(7, 1 << 20);
    }
    p.comm_world().coll().bcast(buffer, 0, "mcast-segmented");
    EXPECT_TRUE(check_pattern(7, buffer));
    if (p.rank() == 0) {
      root_jumbo = p.udp().stats().jumbo_datagrams;
    }
  });
  // ceil(1 MiB / 200000) = 6 chunks; all but the 48 kB tail are jumbo.
  EXPECT_GE(root_jumbo, 5u);
}

// ----------------------------------------------------------- allgather

struct AllgatherCase {
  int procs;
  std::size_t block;
  std::size_t chunk;
  int window;
  int lanes;
};

class SegmentedAllgather : public ::testing::TestWithParam<AllgatherCase> {};

TEST_P(SegmentedAllgather, MatchesRing) {
  const AllgatherCase c = GetParam();
  auto run = [&](const std::string& algo) {
    Cluster cluster(config_for(c.procs));
    std::vector<std::vector<Buffer>> outs(static_cast<std::size_t>(c.procs));
    cluster.world().run([&](mpi::Proc& p) {
      if (algo == "mcast-segmented") {
        coll::set_segmented_config(p, p.comm_world(),
                                   seg_config(c.chunk, c.window, c.lanes));
      }
      const Buffer mine = pattern_payload(
          static_cast<std::uint64_t>(p.rank()) + 100, c.block);
      outs[static_cast<std::size_t>(p.rank())] =
          p.comm_world().coll().allgather(mine, algo);
    });
    return outs;
  };
  const auto seg = run("mcast-segmented");
  const auto ref = run("ring");
  for (int r = 0; r < c.procs; ++r) {
    const auto& blocks = seg[static_cast<std::size_t>(r)];
    ASSERT_EQ(blocks.size(), static_cast<std::size_t>(c.procs))
        << "rank " << r;
    for (int b = 0; b < c.procs; ++b) {
      EXPECT_TRUE(check_pattern(static_cast<std::uint64_t>(b) + 100,
                                blocks[static_cast<std::size_t>(b)]))
          << "rank " << r << " block " << b;
      EXPECT_EQ(blocks[static_cast<std::size_t>(b)],
                ref[static_cast<std::size_t>(r)][static_cast<std::size_t>(b)])
          << "rank " << r << " block " << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ChunkWindowLaneSweep, SegmentedAllgather,
    ::testing::Values(AllgatherCase{4, 150000, 32768, 4, 2},
                      AllgatherCase{3, 2500, 1024, 2, 1},  // ragged chunks
                      AllgatherCase{5, 0, 512, 1, 1},      // empty blocks
                      AllgatherCase{2, 70000, 65536, 2, 1}),
    [](const auto& info) {
      const AllgatherCase& c = info.param;
      return "p" + std::to_string(c.procs) + "_b" + std::to_string(c.block) +
             "_c" + std::to_string(c.chunk) + "_w" +
             std::to_string(c.window) + "_l" + std::to_string(c.lanes);
    });

// ------------------------------------------------------------- scatter

TEST(SegmentedScatter, RaggedBlocksMatchMpich) {
  constexpr int kProcs = 5;
  constexpr int kRoot = 2;
  // Varied block sizes, including an empty one: the chunk table carries
  // the per-rank lengths, so nothing requires uniformity.
  const auto block_len = [](int r) -> std::size_t {
    return r == 3 ? 0 : static_cast<std::size_t>(1000 * r + 37);
  };
  auto run = [&](const std::string& algo) {
    Cluster cluster(config_for(kProcs));
    std::vector<Buffer> outs(kProcs);
    cluster.world().run([&](mpi::Proc& p) {
      if (algo == "mcast-segmented") {
        coll::set_segmented_config(p, p.comm_world(), seg_config(2048, 2, 2));
      }
      std::vector<Buffer> chunks;
      if (p.rank() == kRoot) {
        for (int r = 0; r < kProcs; ++r) {
          chunks.push_back(pattern_payload(static_cast<std::uint64_t>(r) + 50,
                                           block_len(r)));
        }
      }
      outs[static_cast<std::size_t>(p.rank())] =
          p.comm_world().coll().scatter(chunks, kRoot, 0, algo);
    });
    return outs;
  };
  const auto seg = run("mcast-segmented");
  const auto ref = run("mpich");
  for (int r = 0; r < kProcs; ++r) {
    EXPECT_EQ(seg[static_cast<std::size_t>(r)].size(), block_len(r))
        << "rank " << r;
    EXPECT_TRUE(check_pattern(static_cast<std::uint64_t>(r) + 50,
                              seg[static_cast<std::size_t>(r)]))
        << "rank " << r;
    EXPECT_EQ(seg[static_cast<std::size_t>(r)],
              ref[static_cast<std::size_t>(r)])
        << "rank " << r;
  }
}

TEST(SegmentedScatter, JumboBlocksPastTheDatagramCeiling) {
  constexpr int kProcs = 3;
  constexpr std::size_t kBlock = 300000;  // 900 kB stream > kMaxMcastDatagram
  static_assert(kProcs * kBlock > coll::kMaxMcastDatagram);
  Cluster cluster(config_for(kProcs));
  std::vector<int> ok(kProcs, 0);
  cluster.world().run([&](mpi::Proc& p) {
    coll::set_segmented_config(p, p.comm_world(), seg_config(65536, 4, 1));
    std::vector<Buffer> chunks;
    if (p.rank() == 0) {
      for (int r = 0; r < kProcs; ++r) {
        chunks.push_back(
            pattern_payload(static_cast<std::uint64_t>(r) + 9, kBlock));
      }
    }
    const Buffer mine =
        p.comm_world().coll().scatter(chunks, 0, 0, "mcast-segmented");
    ok[static_cast<std::size_t>(p.rank())] =
        mine.size() == kBlock &&
        check_pattern(static_cast<std::uint64_t>(p.rank()) + 9, mine);
  });
  for (int r = 0; r < kProcs; ++r) {
    EXPECT_TRUE(ok[static_cast<std::size_t>(r)]) << "rank " << r;
  }
}

// -------------------------------------------------- dup / split comms

TEST(SegmentedComms, DupAndSplitCommunicators) {
  constexpr int kProcs = 6;
  Cluster cluster(config_for(kProcs));
  std::vector<int> ok(kProcs, 0);
  cluster.world().run([&](mpi::Proc& p) {
    bool good = true;

    // A duplicated world: same ranks, fresh context, its own lanes.
    mpi::Comm dup = p.dup(p.comm_world());
    coll::set_segmented_config(p, dup, seg_config(4096, 2, 2));
    Buffer buffer;
    if (dup.rank() == 0) {
      buffer = pattern_payload(21, 50000);
    }
    dup.coll().bcast(buffer, 0, "mcast-segmented");
    good = good && check_pattern(21, buffer) && buffer.size() == 50000;

    // Two disjoint halves broadcasting different payloads concurrently.
    const int color = p.rank() % 2;
    mpi::Comm half = p.split(p.comm_world(), color, p.rank());
    coll::set_segmented_config(p, half, seg_config(1024, 4, 1));
    Buffer mine;
    if (half.rank() == 0) {
      mine = pattern_payload(static_cast<std::uint64_t>(color) + 70, 30000);
    }
    half.coll().bcast(mine, 0, "mcast-segmented");
    good = good &&
           check_pattern(static_cast<std::uint64_t>(color) + 70, mine) &&
           mine.size() == 30000;

    ok[static_cast<std::size_t>(p.rank())] = good;
  });
  for (int r = 0; r < kProcs; ++r) {
    EXPECT_TRUE(ok[static_cast<std::size_t>(r)]) << "rank " << r;
  }
}

// --------------------------------------------------- pipelining overlap

// The whole point of window > 1: while chunk k's acks are still in
// flight, chunk k+1 is already on the wire.  The scheduler's
// chunk_peak_window counter records the high-water in-flight count — it
// must exceed 1 under a window-4 run and stay exactly 1 under lockstep.
TEST(SegmentedPipelining, PeakWindowShowsOverlap) {
  constexpr std::size_t kBytes = 1 << 20;
  auto run = [&](int window) {
    Cluster cluster(config_for(9));
    std::size_t n_chunks = 0;
    cluster.world().run([&](mpi::Proc& p) {
      const coll::SegmentedConfig cfg = seg_config(65536, window, 1);
      coll::set_segmented_config(p, p.comm_world(), cfg);
      if (p.rank() == 0) {
        const std::size_t eff =
            coll::segmented_effective_chunk(cfg, p.mcast_recv_buffer());
        n_chunks = (kBytes + eff - 1) / eff;
      }
      Buffer buffer;
      if (p.rank() == 0) {
        buffer = pattern_payload(3, kBytes);
      }
      p.comm_world().coll().bcast(buffer, 0, "mcast-segmented");
      EXPECT_TRUE(check_pattern(3, buffer));
    });
    const sim::SchedCounters counters = cluster.simulator().sched_counters();
    EXPECT_EQ(counters.chunk_sent, n_chunks) << "window " << window;
    EXPECT_EQ(counters.chunk_acked, n_chunks * 8) << "window " << window;
    EXPECT_EQ(counters.chunk_retried, 0u) << "window " << window;
    return counters.chunk_peak_window;
  };
  const std::uint64_t lockstep_peak = run(1);
  const std::uint64_t pipelined_peak = run(4);
  EXPECT_EQ(lockstep_peak, 1u);
  EXPECT_GT(pipelined_peak, 1u);
  EXPECT_LE(pipelined_peak, 4u);
}

// ------------------------------------------------------- kAuto routing

TEST(SegmentedAuto, JumboPayloadsFallThroughToSegmented) {
  Cluster cluster(config_for(3));
  cluster.world().run([&](mpi::Proc& p) {
    const coll::Coll facade = p.comm_world().coll();
    // Below the ceiling the classic single-shot pick stands...
    EXPECT_EQ(facade.resolve(coll::CollOp::kBcast, 4096), "mcast-binary");
    // ...and past it the tuned pick is inapplicable, so the trailing
    // rule routes onto the segmented pipeline — for every op that has one.
    const std::size_t jumbo = 16u << 20;
    EXPECT_EQ(facade.resolve(coll::CollOp::kBcast, jumbo), "mcast-segmented");
    EXPECT_EQ(facade.resolve(coll::CollOp::kAllgather, jumbo),
              "mcast-segmented");
    EXPECT_EQ(facade.resolve(coll::CollOp::kScatter, jumbo),
              "mcast-segmented");
    // Jumbo allreduce must dodge the multicast stages' ceiling too.
    EXPECT_EQ(facade.resolve(coll::CollOp::kAllreduce, jumbo), "mpich");
  });
}

TEST(SegmentedAuto, SixteenMiBBcastSucceedsUnderAuto) {
  constexpr std::size_t kBytes = 16u << 20;
  Cluster cluster(config_for(3));
  std::vector<int> ok(3, 0);
  cluster.world().run([&](mpi::Proc& p) {
    // kAuto keys the pick on the payload size, so every rank passes a
    // matching-count buffer (the facade's documented kAuto size rule).
    Buffer buffer(kBytes);
    if (p.rank() == 0) {
      buffer = pattern_payload(16, kBytes);
    }
    p.comm_world().coll().bcast(buffer, 0);  // kAuto
    ok[static_cast<std::size_t>(p.rank())] =
        buffer.size() == kBytes && check_pattern(16, buffer);
  });
  for (int r = 0; r < 3; ++r) {
    EXPECT_TRUE(ok[static_cast<std::size_t>(r)]) << "rank " << r;
  }
}

}  // namespace
}  // namespace mcmpi
