// Sharded-simulator oracle tests.
//
// The determinism contract of the sharded simulator (docs/ARCHITECTURE.md,
// "Sharded parallel simulation"):
//
//   1. The parallel driver (worker threads + conservative window barriers)
//      is BIT-IDENTICAL to the serial reference driver at every shard
//      count: same per-repetition latencies, same merged scheduler
//      counters, same frame counters.
//   2. A topology whose work lands on one shard (every single-segment
//      cluster, whatever the shard count) is bit-identical to the classic
//      unsharded simulator, counters included.
//   3. Simulated timestamps AND counters are independent of the configured
//      shard count on every medium: the cluster always creates one logical
//      shard per segment (sim_shards only sets the worker count the
//      parallel driver multiplexes them onto), and CSMA/CD backoffs draw
//      from per-device RNG streams, so hubs are covered too.
//
// Plus bridge-level behaviour: unicast routing, multicast flooding, split
// horizon, and the trunk latency floor.
#include <gtest/gtest.h>

#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/experiment.hpp"
#include "coll/facade.hpp"
#include "common/bytes.hpp"
#include "net/counters.hpp"

namespace mcmpi {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::NetworkType;

/// Everything one simulation run leaves behind that the oracle compares.
struct Trace {
  std::vector<double> latencies_us;  // per measured repetition
  net::NetCounters net;              // summed over segments
  sim::SchedCounters sched;          // merged over shards
  std::uint64_t events_scheduled = 0;

  bool same_times(const Trace& other) const {
    return latencies_us == other.latencies_us;
  }
  bool same_counters(const Trace& other) const {
    return net.host_tx_frames == other.net.host_tx_frames &&
           net.host_tx_bytes == other.net.host_tx_bytes &&
           net.deliveries == other.net.deliveries &&
           net.collisions == other.net.collisions &&
           sched.handoffs == other.sched.handoffs &&
           sched.coalesced_delays == other.sched.coalesced_delays &&
           sched.batched_callbacks == other.sched.batched_callbacks &&
           sched.events_executed == other.sched.events_executed &&
           events_scheduled == other.events_scheduled;
  }
};

/// A small mixed-collective workload: bcast + allreduce + barrier per rep.
Trace run_workload(NetworkType network, int procs, int segments,
                   unsigned shards, sim::ShardDriver driver,
                   int payload_bytes = 2048,
                   sim::ExecutionBackend backend =
                       sim::default_execution_backend()) {
  ClusterConfig config;
  config.network = network;
  config.num_procs = procs;
  config.num_segments = segments;
  config.sim_shards = shards;
  config.shard_driver = driver;
  config.sim_backend = backend;
  config.seed = 7;
  if (procs > cluster::kMaxEagleHosts) {
    config.hosts = cluster::make_uniform_hosts(procs);
  }
  Cluster cluster(config);

  cluster::ExperimentConfig exp;
  exp.reps = 4;
  exp.warmup_reps = 1;
  const auto bytes = static_cast<std::size_t>(payload_bytes);
  const auto result = cluster::measure_collective(
      cluster, exp, [bytes](mpi::Proc& p, int rep) {
        const mpi::Comm comm = p.comm_world();
        Buffer data(bytes, 0);
        if (p.rank() == rep % comm.size()) {
          data = pattern_payload(static_cast<std::uint64_t>(rep), bytes);
        }
        comm.coll().bcast(data, rep % comm.size(), "mcast-binary");
        EXPECT_TRUE(check_pattern(static_cast<std::uint64_t>(rep), data));

        const Buffer mine = pattern_payload(
            static_cast<std::uint64_t>(p.rank()) * 131 + 5, 256);
        const Buffer sum = comm.coll().allreduce(mine, mpi::Op::kBor,
                                                 mpi::Datatype::kByte);
        EXPECT_EQ(sum.size(), 256u);

        comm.coll().barrier("mpich");
      });

  Trace trace;
  trace.latencies_us = result.latencies_us.values();
  trace.net = cluster.net_counters();
  trace.sched = cluster.simulator().sched_counters();
  trace.events_scheduled = cluster.simulator().events_scheduled();
  return trace;
}

// ----------------------------------------------------------------- bridges

TEST(Bridge, UnicastCrossesTheTrunkIntact) {
  ClusterConfig config;
  config.network = NetworkType::kSwitch;
  config.num_procs = 4;
  config.num_segments = 2;
  config.sim_shards = 1;
  Cluster cluster(config);
  ASSERT_EQ(cluster.segment_of_rank(0), 0);
  ASSERT_EQ(cluster.segment_of_rank(3), 1);

  Buffer received;
  SimTime sent_at{}, got_at{};
  cluster.world().run([&](mpi::Proc& p) {
    const Buffer payload = pattern_payload(42, 900);
    if (p.rank() == 0) {
      sent_at = p.self().now();
      p.send(p.comm_world(), 3, 77, payload);
    } else if (p.rank() == 3) {
      received = p.recv(p.comm_world(), 0, 77);
      got_at = p.self().now();
    }
  });
  EXPECT_TRUE(check_pattern(42, received));
  EXPECT_EQ(received.size(), 900u);
  // The one-way path must include at least one trunk hop.
  EXPECT_GE(got_at - sent_at, cluster.config().trunk_latency);
  // Exactly one trunk joins two segments, and it forwarded in both
  // directions (eager data one way, transport ack back).
  ASSERT_EQ(cluster.bridges().size(), 1u);
  EXPECT_GT(cluster.bridges().front()->forwarded_frames(), 0u);
}

TEST(Bridge, MulticastFloodsEverySegmentOnce) {
  ClusterConfig config;
  config.network = NetworkType::kSwitch;
  config.num_procs = 6;
  config.num_segments = 3;
  config.sim_shards = 1;
  Cluster cluster(config);
  ASSERT_EQ(cluster.bridges().size(), 3u);  // full mesh over 3 segments

  int delivered = 0;
  cluster.world().run([&](mpi::Proc& p) {
    Buffer data;
    if (p.rank() == 0) {
      data = pattern_payload(9, 4000);
    } else {
      data.resize(4000);
    }
    p.comm_world().coll().bcast(data, 0, "mcast-linear");
    EXPECT_TRUE(check_pattern(9, data));
    ++delivered;
  });
  EXPECT_EQ(delivered, 6);
  // Split horizon: the multicast data crossed each of the two trunks off
  // segment 0 exactly once per frame; the trunk joining segments 1 and 2
  // never re-forwarded it (scout unicasts and the payload all originate
  // elsewhere... it still carries scouts towards the root's segment).
  const net::NetCounters total = cluster.net_counters();
  EXPECT_EQ(total.queue_drops, 0u);
}

TEST(Bridge, LocalTrafficStaysOffTheTrunk) {
  ClusterConfig config;
  config.network = NetworkType::kSwitch;
  config.num_procs = 4;
  config.num_segments = 2;
  config.sim_shards = 1;
  Cluster cluster(config);

  // Ranks 0 and 1 share segment 0: their exchange must not be forwarded.
  cluster.world().run([&](mpi::Proc& p) {
    if (p.rank() == 0) {
      p.send(p.comm_world(), 1, 5, pattern_payload(1, 64));
    } else if (p.rank() == 1) {
      (void)p.recv(p.comm_world(), 0, 5);
    }
  });
  EXPECT_EQ(cluster.bridges().front()->forwarded_frames(), 0u);
}

// ---------------------------------------------------------- driver oracle

struct OracleCase {
  NetworkType network;
  int procs;
  int segments;
};

class ShardOracle : public ::testing::TestWithParam<OracleCase> {};

INSTANTIATE_TEST_SUITE_P(
    Topologies, ShardOracle,
    ::testing::Values(OracleCase{NetworkType::kHub, 5, 1},
                      OracleCase{NetworkType::kSwitch, 6, 1},
                      OracleCase{NetworkType::kSwitch, 6, 2},
                      OracleCase{NetworkType::kHub, 6, 2}),
    [](const ::testing::TestParamInfo<OracleCase>& info) {
      const OracleCase& c = info.param;
      return cluster::to_string(c.network) + std::to_string(c.procs) + "p" +
             std::to_string(c.segments) + "seg";
    });

// Contract 1: serial and parallel drivers are bit-identical at every shard
// count — latencies, scheduler counters, frame counters, event totals.
TEST_P(ShardOracle, ParallelDriverMatchesSerialReference) {
  const OracleCase& c = GetParam();
  for (unsigned shards : {1u, 2u, 4u}) {
    const Trace serial = run_workload(c.network, c.procs, c.segments, shards,
                                      sim::ShardDriver::kSerial);
    const Trace parallel = run_workload(c.network, c.procs, c.segments,
                                        shards, sim::ShardDriver::kParallel);
    EXPECT_TRUE(serial.same_times(parallel))
        << "latency divergence at " << shards << " shards";
    EXPECT_TRUE(serial.same_counters(parallel))
        << "counter divergence at " << shards << " shards";
    ASSERT_EQ(serial.latencies_us.size(), 4u);
  }
}

// Contract 2: on a single-segment topology every shard count collapses to
// the classic unsharded run — bit-identical counters included.
TEST_P(ShardOracle, SingleSegmentIsUnshardedWhateverTheShardCount) {
  const OracleCase& c = GetParam();
  if (c.segments != 1) {
    GTEST_SKIP() << "single-segment contract";
  }
  const Trace classic = run_workload(c.network, c.procs, 1, 1,
                                     sim::ShardDriver::kSerial);
  for (unsigned shards : {2u, 4u}) {
    for (const auto driver :
         {sim::ShardDriver::kSerial, sim::ShardDriver::kParallel}) {
      const Trace sharded =
          run_workload(c.network, c.procs, 1, shards, driver);
      EXPECT_TRUE(classic.same_times(sharded));
      EXPECT_TRUE(classic.same_counters(sharded));
    }
  }
}

// Contract 3: the configured shard count never changes the run — the
// cluster keeps one logical shard per segment regardless, so timestamps
// AND every counter are bit-identical whether the windows run on one
// worker or many.
TEST(ShardOracleCross, SwitchTimestampsIndependentOfShardCount) {
  const Trace one = run_workload(NetworkType::kSwitch, 6, 2, 1,
                                 sim::ShardDriver::kSerial);
  for (unsigned shards : {2u, 4u}) {
    const Trace sharded = run_workload(NetworkType::kSwitch, 6, 2, shards,
                                       sim::ShardDriver::kParallel);
    EXPECT_TRUE(one.same_times(sharded))
        << "simulated latencies changed at " << shards << " shards";
    EXPECT_TRUE(one.same_counters(sharded))
        << "counters changed at " << shards << " shards";
  }
}

// Contract 3 on a hub: CSMA/CD backoffs draw from per-device splitmix64
// streams keyed by device id, not from whichever shard owns the segment,
// so the collision schedule survives resharding bit-for-bit too.
TEST(ShardOracleCross, HubBackoffsIndependentOfShardCount) {
  const Trace one = run_workload(NetworkType::kHub, 6, 2, 1,
                                 sim::ShardDriver::kSerial);
  EXPECT_GT(one.net.collisions, 0u)
      << "workload never collided: the contract is vacuous on this topology";
  for (unsigned shards : {2u, 4u}) {
    const Trace sharded = run_workload(NetworkType::kHub, 6, 2, shards,
                                       sim::ShardDriver::kParallel);
    EXPECT_TRUE(one.same_times(sharded))
        << "simulated latencies changed at " << shards << " shards";
    EXPECT_TRUE(one.same_counters(sharded))
        << "counters changed at " << shards << " shards";
  }
}

// The execution backends (fibers vs the thread-per-process oracle) must
// stay bit-identical under sharding too — including with worker threads
// resuming thread-backend contexts across shards.
TEST(ShardOracleCross, FiberAndThreadBackendsMatchWhenSharded) {
  const Trace fiber =
      run_workload(NetworkType::kSwitch, 6, 2, 2, sim::ShardDriver::kParallel,
                   2048, sim::ExecutionBackend::kFiber);
  const Trace thread =
      run_workload(NetworkType::kSwitch, 6, 2, 2, sim::ShardDriver::kParallel,
                   2048, sim::ExecutionBackend::kThread);
  EXPECT_TRUE(fiber.same_times(thread));
  EXPECT_TRUE(fiber.same_counters(thread));
}

// A ≥16-rank four-segment sweep shape — the bench_shard_scaling topology —
// stays deterministic under the parallel driver.
TEST(ShardOracleCross, SixteenRankFourSegmentSweepIsDeterministic) {
  const Trace a = run_workload(NetworkType::kSwitch, 16, 4, 4,
                               sim::ShardDriver::kParallel, 8192);
  const Trace b = run_workload(NetworkType::kSwitch, 16, 4, 4,
                               sim::ShardDriver::kParallel, 8192);
  EXPECT_TRUE(a.same_times(b));
  EXPECT_TRUE(a.same_counters(b));
  const Trace serial = run_workload(NetworkType::kSwitch, 16, 4, 4,
                                    sim::ShardDriver::kSerial, 8192);
  EXPECT_TRUE(a.same_times(serial));
  EXPECT_TRUE(a.same_counters(serial));
}

}  // namespace
}  // namespace mcmpi
