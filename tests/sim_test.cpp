// Unit tests for the discrete-event kernel: event ordering, virtual time,
// cooperative processes, wait queues and deadlock detection.
#include <gtest/gtest.h>

#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "sim/wait.hpp"

namespace mcmpi::sim {
namespace {

// ----------------------------------------------------------- event queue

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(microseconds(30), [&] { order.push_back(3); });
  q.schedule(microseconds(10), [&] { order.push_back(1); });
  q.schedule(microseconds(20), [&] { order.push_back(2); });
  while (!q.empty()) {
    q.pop().fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeFiresInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(microseconds(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) {
    q.pop().fn();
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(microseconds(1), [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, DoubleCancelIsSafe) {
  EventQueue q;
  const EventId id = q.schedule(microseconds(1), [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
  EXPECT_FALSE(q.cancel(kInvalidEvent));
  EXPECT_FALSE(q.cancel(9999));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId early = q.schedule(microseconds(1), [] {});
  q.schedule(microseconds(5), [] {});
  q.cancel(early);
  EXPECT_EQ(q.next_time(), microseconds(5));
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, RecycledSlotRejectsStaleHandle) {
  // After an event fires (or is cancelled), its slot is recycled with a new
  // generation: the old handle must not cancel the new occupant.
  EventQueue q;
  const EventId first = q.schedule(microseconds(1), [] {});
  q.pop().fn();
  bool second_fired = false;
  const EventId second =
      q.schedule(microseconds(2), [&] { second_fired = true; });
  EXPECT_NE(first, second);      // same slot, new generation
  EXPECT_FALSE(q.cancel(first)); // stale handle is dead
  EXPECT_EQ(q.size(), 1u);
  q.pop().fn();
  EXPECT_TRUE(second_fired);
}

TEST(EventQueue, HeavyCancelChurnStaysConsistent) {
  EventQueue q;
  std::vector<EventId> ids;
  int fired = 0;
  for (int round = 0; round < 50; ++round) {
    ids.clear();
    for (int i = 0; i < 100; ++i) {
      ids.push_back(q.schedule(microseconds(round * 100 + i),
                               [&fired] { ++fired; }));
    }
    for (int i = 0; i < 100; i += 2) {
      EXPECT_TRUE(q.cancel(ids[static_cast<std::size_t>(i)]));
    }
    while (!q.empty()) {
      q.pop().fn();
    }
  }
  EXPECT_EQ(fired, 50 * 50);
  EXPECT_EQ(q.total_scheduled(), 50u * 100u);
}

TEST(EventQueue, LargeCallableTakesHeapPathAndStillRuns) {
  // A capture bigger than EventFn's inline storage must still work (the
  // wrapper falls back to a heap-held callable).
  EventQueue q;
  std::array<std::uint8_t, 512> big{};
  big[0] = 42;
  big[511] = 7;
  int sum = 0;
  q.schedule(microseconds(1), [big, &sum] { sum = big[0] + big[511]; });
  q.pop().fn();
  EXPECT_EQ(sum, 49);
}

// -------------------------------------------------------------- simulator

TEST(Simulator, ClockAdvancesToEventTimes) {
  Simulator sim;
  std::vector<std::int64_t> times;
  sim.schedule_at(microseconds(10), [&] { times.push_back(sim.now().count()); });
  sim.schedule_at(microseconds(25), [&] { times.push_back(sim.now().count()); });
  sim.run();
  EXPECT_EQ(times, (std::vector<std::int64_t>{10'000, 25'000}));
  EXPECT_EQ(sim.now(), microseconds(25));
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator sim;
  sim.schedule_at(microseconds(10), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(microseconds(5), [] {}), ContractViolation);
}

TEST(Simulator, ProcessDelayAdvancesVirtualTimeOnly) {
  Simulator sim;
  SimTime observed{};
  sim.spawn("sleeper", [&](SimProcess& self) {
    self.delay(milliseconds(5));
    observed = self.now();
  });
  sim.run();
  EXPECT_EQ(observed, milliseconds(5));
}

TEST(Simulator, ProcessesInterleaveDeterministically) {
  Simulator sim;
  std::vector<std::string> trace;
  for (const char* name : {"a", "b"}) {
    sim.spawn(name, [&trace, name](SimProcess& self) {
      for (int i = 0; i < 3; ++i) {
        trace.push_back(std::string(name) + std::to_string(i));
        self.delay(microseconds(10));
      }
    });
  }
  sim.run();
  EXPECT_EQ(trace, (std::vector<std::string>{"a0", "b0", "a1", "b1", "a2",
                                             "b2"}));
}

TEST(Simulator, DelayUntilIsAbsolute) {
  Simulator sim;
  SimTime t{};
  sim.spawn("p", [&](SimProcess& self) {
    self.delay_until(microseconds(100));
    self.delay_until(microseconds(50));  // already past: no-op
    t = self.now();
  });
  sim.run();
  EXPECT_EQ(t, microseconds(100));
}

TEST(Simulator, ExceptionInProcessPropagates) {
  Simulator sim;
  sim.spawn("thrower", [](SimProcess&) {
    throw std::runtime_error("rank exploded");
  });
  EXPECT_THROW(sim.run(), std::runtime_error);
}

TEST(Simulator, DeadlockIsDetectedAndNamed) {
  Simulator sim;
  WaitQueue never;
  sim.spawn("stuck", [&](SimProcess& self) { never.wait(self); });
  try {
    sim.run();
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    EXPECT_NE(std::string(e.what()).find("stuck"), std::string::npos);
  }
}

TEST(Simulator, TeardownUnwindsParkedProcesses) {
  // A process parked in a WaitQueue at destruction time must unwind
  // cleanly (no crash, no leak — ASAN would catch both).
  auto sim = std::make_unique<Simulator>();
  WaitQueue q;
  sim->spawn("parked", [&](SimProcess& self) { q.wait(self); });
  try {
    sim->run();
  } catch (const DeadlockError&) {
    // expected: now destroy with the process still parked
  }
  EXPECT_NO_THROW(sim.reset());
  EXPECT_TRUE(q.empty()) << "unwind must remove the waiter entry";
}

TEST(Simulator, SpawnDuringRunWorks) {
  Simulator sim;
  bool child_ran = false;
  sim.spawn("parent", [&](SimProcess& self) {
    self.delay(microseconds(1));
    self.simulator().spawn("child", [&](SimProcess& inner) {
      inner.delay(microseconds(1));
      child_ran = true;
    });
  });
  sim.run();
  EXPECT_TRUE(child_ran);
}

TEST(Simulator, PerProcessRngStreamsDiffer) {
  Simulator sim;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  sim.spawn("a", [&](SimProcess& self) { a = self.rng()(); });
  sim.spawn("b", [&](SimProcess& self) { b = self.rng()(); });
  sim.run();
  EXPECT_NE(a, b);
}

// -------------------------------------------------------------- wait queue

TEST(WaitQueue, NotifyOneWakesInFifoOrder) {
  Simulator sim;
  WaitQueue q;
  std::vector<int> woke;
  for (int i = 0; i < 3; ++i) {
    sim.spawn("w" + std::to_string(i), [&q, &woke, i](SimProcess& self) {
      q.wait(self);
      woke.push_back(i);
    });
  }
  sim.spawn("waker", [&](SimProcess& self) {
    self.delay(microseconds(10));
    q.notify_one();
    self.delay(microseconds(10));
    q.notify_one();
    self.delay(microseconds(10));
    q.notify_one();
  });
  sim.run();
  EXPECT_EQ(woke, (std::vector<int>{0, 1, 2}));
}

TEST(WaitQueue, NotifyAllWakesEveryone) {
  Simulator sim;
  WaitQueue q;
  int woke = 0;
  for (int i = 0; i < 5; ++i) {
    sim.spawn("w" + std::to_string(i), [&](SimProcess& self) {
      q.wait(self);
      ++woke;
    });
  }
  sim.spawn("waker", [&](SimProcess& self) {
    self.delay(microseconds(1));
    q.notify_all();
  });
  sim.run();
  EXPECT_EQ(woke, 5);
}

TEST(WaitQueue, WaitUntilTimesOut) {
  Simulator sim;
  WaitQueue q;
  bool notified = true;
  SimTime woke_at{};
  sim.spawn("p", [&](SimProcess& self) {
    notified = q.wait_until(self, microseconds(100));
    woke_at = self.now();
  });
  sim.run();
  EXPECT_FALSE(notified);
  EXPECT_EQ(woke_at, microseconds(100));
}

TEST(WaitQueue, WaitUntilNotifiedBeforeDeadline) {
  Simulator sim;
  WaitQueue q;
  bool notified = false;
  sim.spawn("p", [&](SimProcess& self) {
    notified = q.wait_until(self, milliseconds(10));
  });
  sim.spawn("waker", [&](SimProcess& self) {
    self.delay(microseconds(10));
    q.notify_one();
  });
  sim.run();
  EXPECT_TRUE(notified);
}

TEST(WaitQueue, PredicateHelperLoops) {
  Simulator sim;
  WaitQueue q;
  int value = 0;
  int observed = -1;
  sim.spawn("consumer", [&](SimProcess& self) {
    wait_for(self, q, [&] { return value == 3; });
    observed = value;
  });
  sim.spawn("producer", [&](SimProcess& self) {
    for (int i = 1; i <= 3; ++i) {
      self.delay(microseconds(5));
      value = i;
      q.notify_all();
    }
  });
  sim.run();
  EXPECT_EQ(observed, 3);
}

// Determinism: two identical simulations produce identical event history.
TEST(Simulator, BitIdenticalReplay) {
  auto run_once = [] {
    Simulator sim(77);
    std::vector<std::int64_t> history;
    WaitQueue q;
    for (int i = 0; i < 4; ++i) {
      sim.spawn("p" + std::to_string(i), [&, i](SimProcess& self) {
        for (int j = 0; j < 10; ++j) {
          self.delay(SimTime{static_cast<std::int64_t>(self.rng().below(5000)) + 1});
          history.push_back(self.now().count() * 10 + i);
        }
      });
    }
    sim.run();
    return history;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace mcmpi::sim
