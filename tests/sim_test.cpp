// Unit tests for the discrete-event kernel: event ordering, virtual time,
// cooperative processes, wait queues and deadlock detection.
#include <gtest/gtest.h>

#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "sim/wait.hpp"

namespace mcmpi::sim {
namespace {

// ----------------------------------------------------------- event queue

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(microseconds(30), [&] { order.push_back(3); });
  q.schedule(microseconds(10), [&] { order.push_back(1); });
  q.schedule(microseconds(20), [&] { order.push_back(2); });
  while (!q.empty()) {
    q.pop().fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeFiresInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(microseconds(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) {
    q.pop().fn();
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(microseconds(1), [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, DoubleCancelIsSafe) {
  EventQueue q;
  const EventId id = q.schedule(microseconds(1), [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
  EXPECT_FALSE(q.cancel(kInvalidEvent));
  EXPECT_FALSE(q.cancel(9999));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId early = q.schedule(microseconds(1), [] {});
  q.schedule(microseconds(5), [] {});
  q.cancel(early);
  EXPECT_EQ(q.next_time(), microseconds(5));
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, RecycledSlotRejectsStaleHandle) {
  // After an event fires (or is cancelled), its slot is recycled with a new
  // generation: the old handle must not cancel the new occupant.
  EventQueue q;
  const EventId first = q.schedule(microseconds(1), [] {});
  q.pop().fn();
  bool second_fired = false;
  const EventId second =
      q.schedule(microseconds(2), [&] { second_fired = true; });
  EXPECT_NE(first, second);      // same slot, new generation
  EXPECT_FALSE(q.cancel(first)); // stale handle is dead
  EXPECT_EQ(q.size(), 1u);
  q.pop().fn();
  EXPECT_TRUE(second_fired);
}

TEST(EventQueue, HeavyCancelChurnStaysConsistent) {
  EventQueue q;
  std::vector<EventId> ids;
  int fired = 0;
  for (int round = 0; round < 50; ++round) {
    ids.clear();
    for (int i = 0; i < 100; ++i) {
      ids.push_back(q.schedule(microseconds(round * 100 + i),
                               [&fired] { ++fired; }));
    }
    for (int i = 0; i < 100; i += 2) {
      EXPECT_TRUE(q.cancel(ids[static_cast<std::size_t>(i)]));
    }
    while (!q.empty()) {
      q.pop().fn();
    }
  }
  EXPECT_EQ(fired, 50 * 50);
  EXPECT_EQ(q.total_scheduled(), 50u * 100u);
}

TEST(EventQueue, LargeCallableTakesHeapPathAndStillRuns) {
  // A capture bigger than EventFn's inline storage must still work (the
  // wrapper falls back to a heap-held callable).
  EventQueue q;
  std::array<std::uint8_t, 512> big{};
  big[0] = 42;
  big[511] = 7;
  int sum = 0;
  q.schedule(microseconds(1), [big, &sum] { sum = big[0] + big[511]; });
  q.pop().fn();
  EXPECT_EQ(sum, 49);
}

// -------------------------------------------------------------- simulator

TEST(Simulator, ClockAdvancesToEventTimes) {
  Simulator sim;
  std::vector<std::int64_t> times;
  sim.schedule_at(microseconds(10), [&] { times.push_back(sim.now().count()); });
  sim.schedule_at(microseconds(25), [&] { times.push_back(sim.now().count()); });
  sim.run();
  EXPECT_EQ(times, (std::vector<std::int64_t>{10'000, 25'000}));
  EXPECT_EQ(sim.now(), microseconds(25));
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator sim;
  sim.schedule_at(microseconds(10), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(microseconds(5), [] {}), ContractViolation);
}

TEST(Simulator, ProcessDelayAdvancesVirtualTimeOnly) {
  Simulator sim;
  SimTime observed{};
  sim.spawn("sleeper", [&](SimProcess& self) {
    self.delay(milliseconds(5));
    observed = self.now();
  });
  sim.run();
  EXPECT_EQ(observed, milliseconds(5));
}

TEST(Simulator, ProcessesInterleaveDeterministically) {
  Simulator sim;
  std::vector<std::string> trace;
  for (const char* name : {"a", "b"}) {
    sim.spawn(name, [&trace, name](SimProcess& self) {
      for (int i = 0; i < 3; ++i) {
        trace.push_back(std::string(name) + std::to_string(i));
        self.delay(microseconds(10));
      }
    });
  }
  sim.run();
  EXPECT_EQ(trace, (std::vector<std::string>{"a0", "b0", "a1", "b1", "a2",
                                             "b2"}));
}

TEST(Simulator, DelayUntilIsAbsolute) {
  Simulator sim;
  SimTime t{};
  sim.spawn("p", [&](SimProcess& self) {
    self.delay_until(microseconds(100));
    self.delay_until(microseconds(50));  // already past: no-op
    t = self.now();
  });
  sim.run();
  EXPECT_EQ(t, microseconds(100));
}

TEST(Simulator, ExceptionInProcessPropagates) {
  Simulator sim;
  sim.spawn("thrower", [](SimProcess&) {
    throw std::runtime_error("rank exploded");
  });
  EXPECT_THROW(sim.run(), std::runtime_error);
}

TEST(Simulator, DeadlockIsDetectedAndNamed) {
  // Declared before the simulator: teardown unwinds the parked process,
  // which must find the queue alive to deregister itself (the same
  // destruction-order rule cluster.hpp documents).
  WaitQueue never;
  Simulator sim;
  sim.spawn("stuck", [&](SimProcess& self) { never.wait(self); });
  try {
    sim.run();
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    EXPECT_NE(std::string(e.what()).find("stuck"), std::string::npos);
  }
}

TEST(Simulator, TeardownUnwindsParkedProcesses) {
  // A process parked in a WaitQueue at destruction time must unwind
  // cleanly (no crash, no leak — ASAN would catch both).
  auto sim = std::make_unique<Simulator>();
  WaitQueue q;
  sim->spawn("parked", [&](SimProcess& self) { q.wait(self); });
  try {
    sim->run();
  } catch (const DeadlockError&) {
    // expected: now destroy with the process still parked
  }
  EXPECT_NO_THROW(sim.reset());
  EXPECT_TRUE(q.empty()) << "unwind must remove the waiter entry";
}

TEST(Simulator, SpawnDuringRunWorks) {
  Simulator sim;
  bool child_ran = false;
  sim.spawn("parent", [&](SimProcess& self) {
    self.delay(microseconds(1));
    self.simulator().spawn("child", [&](SimProcess& inner) {
      inner.delay(microseconds(1));
      child_ran = true;
    });
  });
  sim.run();
  EXPECT_TRUE(child_ran);
}

TEST(Simulator, PerProcessRngStreamsDiffer) {
  Simulator sim;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  sim.spawn("a", [&](SimProcess& self) { a = self.rng()(); });
  sim.spawn("b", [&](SimProcess& self) { b = self.rng()(); });
  sim.run();
  EXPECT_NE(a, b);
}

// -------------------------------------------------------------- wait queue

TEST(WaitQueue, NotifyOneWakesInFifoOrder) {
  Simulator sim;
  WaitQueue q;
  std::vector<int> woke;
  for (int i = 0; i < 3; ++i) {
    sim.spawn("w" + std::to_string(i), [&q, &woke, i](SimProcess& self) {
      q.wait(self);
      woke.push_back(i);
    });
  }
  sim.spawn("waker", [&](SimProcess& self) {
    self.delay(microseconds(10));
    q.notify_one();
    self.delay(microseconds(10));
    q.notify_one();
    self.delay(microseconds(10));
    q.notify_one();
  });
  sim.run();
  EXPECT_EQ(woke, (std::vector<int>{0, 1, 2}));
}

TEST(WaitQueue, NotifyAllWakesEveryone) {
  Simulator sim;
  WaitQueue q;
  int woke = 0;
  for (int i = 0; i < 5; ++i) {
    sim.spawn("w" + std::to_string(i), [&](SimProcess& self) {
      q.wait(self);
      ++woke;
    });
  }
  sim.spawn("waker", [&](SimProcess& self) {
    self.delay(microseconds(1));
    q.notify_all();
  });
  sim.run();
  EXPECT_EQ(woke, 5);
}

TEST(WaitQueue, WaitUntilTimesOut) {
  Simulator sim;
  WaitQueue q;
  bool notified = true;
  SimTime woke_at{};
  sim.spawn("p", [&](SimProcess& self) {
    notified = q.wait_until(self, microseconds(100));
    woke_at = self.now();
  });
  sim.run();
  EXPECT_FALSE(notified);
  EXPECT_EQ(woke_at, microseconds(100));
}

TEST(WaitQueue, WaitUntilNotifiedBeforeDeadline) {
  Simulator sim;
  WaitQueue q;
  bool notified = false;
  sim.spawn("p", [&](SimProcess& self) {
    notified = q.wait_until(self, milliseconds(10));
  });
  sim.spawn("waker", [&](SimProcess& self) {
    self.delay(microseconds(10));
    q.notify_one();
  });
  sim.run();
  EXPECT_TRUE(notified);
}

TEST(WaitQueue, PredicateHelperLoops) {
  Simulator sim;
  WaitQueue q;
  int value = 0;
  int observed = -1;
  sim.spawn("consumer", [&](SimProcess& self) {
    wait_for(self, q, [&] { return value == 3; });
    observed = value;
  });
  sim.spawn("producer", [&](SimProcess& self) {
    for (int i = 1; i <= 3; ++i) {
      self.delay(microseconds(5));
      value = i;
      q.notify_all();
    }
  });
  sim.run();
  EXPECT_EQ(observed, 3);
}

// ----------------------------------------------- backend-parameterized
// Scheduler edge cases that must behave identically on the fiber and the
// thread execution backends (the thread backend is the determinism oracle
// and the sanitizer fallback — see docs/ARCHITECTURE.md).

class BackendTest : public ::testing::TestWithParam<ExecutionBackend> {};

INSTANTIATE_TEST_SUITE_P(Backends, BackendTest,
                         ::testing::Values(ExecutionBackend::kFiber,
                                           ExecutionBackend::kThread),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

// A timeout timer scheduled before the notify event fires first at the same
// tick: the timeout must win, and the later notify must find nobody.
TEST_P(BackendTest, WaitUntilTimeoutRacingNotifyTimerFirst) {
  Simulator sim(1, GetParam());
  WaitQueue q;
  bool notified = true;
  SimTime woke_at{};
  // The waiter parks first, so its deadline timer holds the earlier seq.
  sim.spawn("waiter", [&](SimProcess& self) {
    notified = q.wait_until(self, microseconds(100));
    woke_at = self.now();
  });
  sim.spawn("notifier", [&](SimProcess& self) {
    self.delay_until(microseconds(100));  // same tick as the deadline
    q.notify_one();                       // nobody left: timeout already won
  });
  sim.run();
  EXPECT_FALSE(notified);
  EXPECT_EQ(woke_at, microseconds(100));
  EXPECT_TRUE(q.empty());
}

// An event scheduled before the process ever parks holds the earlier seq:
// at the same tick the notify now beats the timeout.
TEST_P(BackendTest, WaitUntilTimeoutRacingNotifyNotifyFirst) {
  Simulator sim(1, GetParam());
  WaitQueue q;
  bool notified = false;
  SimTime woke_at{};
  sim.schedule_at(microseconds(100), [&] { q.notify_one(); });
  sim.spawn("waiter", [&](SimProcess& self) {
    notified = q.wait_until(self, microseconds(100));
    woke_at = self.now();
  });
  sim.run();
  EXPECT_TRUE(notified);
  EXPECT_EQ(woke_at, microseconds(100));
}

TEST_P(BackendTest, DeadlockMessageNamesEveryBlockedProcess) {
  WaitQueue q;  // before the simulator: outlives the parked processes
  Simulator sim(1, GetParam());
  sim.spawn("alpha", [&](SimProcess& self) { q.wait(self); });
  sim.spawn("beta", [&](SimProcess& self) { self.delay(microseconds(5)); });
  sim.spawn("gamma", [&](SimProcess& self) { q.wait(self); });
  try {
    sim.run();
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("simulation deadlock at t="), std::string::npos);
    EXPECT_NE(what.find("blocked: alpha gamma"), std::string::npos)
        << what;
    EXPECT_EQ(what.find("beta"), std::string::npos)
        << "finished process must not be listed: " << what;
  }
}

namespace {
struct RankFailure : std::runtime_error {
  RankFailure(int rank, std::string detail)
      : std::runtime_error(std::move(detail)), rank(rank) {}
  int rank;
};
}  // namespace

// The exact exception type and its payload must cross the context boundary.
TEST_P(BackendTest, ExceptionTypeAndPayloadPropagateOutOfContext) {
  Simulator sim(1, GetParam());
  sim.spawn("ok", [](SimProcess& self) { self.delay(microseconds(1)); });
  sim.spawn("thrower", [](SimProcess& self) {
    self.delay(microseconds(2));
    throw RankFailure(7, "rank 7 exploded");
  });
  try {
    sim.run();
    FAIL() << "expected RankFailure";
  } catch (const RankFailure& e) {
    EXPECT_EQ(e.rank, 7);
    EXPECT_STREQ(e.what(), "rank 7 exploded");
  }
}

// Teardown with processes in every parked flavour: a run() abandoned by an
// exception leaves one process parked in wait(), one parked in wait_until()
// with its deadline timer still pending, and one spawned-but-never-started.
// Destruction must unwind the parked stacks (RAII runs via ProcessKilled),
// leave the wait queue empty, and never run the unstarted body.
TEST_P(BackendTest, TeardownUnwindsEveryParkedFlavour) {
  int unwound = 0;
  bool never_started_ran = false;
  struct UnwindProbe {
    int& count;
    ~UnwindProbe() { ++count; }
  };
  WaitQueue q;
  {
    Simulator sim(1, GetParam());
    sim.spawn("plain-wait", [&](SimProcess& self) {
      UnwindProbe probe{unwound};
      q.wait(self);
    });
    sim.spawn("deadline-wait", [&](SimProcess& self) {
      UnwindProbe probe{unwound};
      (void)q.wait_until(self, seconds(100));
    });
    sim.spawn("thrower", [](SimProcess& self) {
      self.delay(microseconds(1));
      throw std::runtime_error("abandon run");
    });
    EXPECT_THROW(sim.run(), std::runtime_error);
    sim.spawn("never-started", [&](SimProcess&) {
      never_started_ran = true;
    });
    // Simulator destroyed with two parked processes (one holding a live
    // deadline timer) and one unstarted process.
  }
  EXPECT_EQ(unwound, 2) << "every parked stack must unwind its locals";
  EXPECT_FALSE(never_started_ran);
  EXPECT_TRUE(q.empty()) << "unwind must remove all waiter entries";
}

// Charged wakes (WaitQueue::wait_charged) fold the post-wake charge into
// the wake-up; the result must be identical to wake-then-delay.
TEST_P(BackendTest, ChargedWakeResumesAtNotifyPlusCharge) {
  Simulator sim(1, GetParam());
  WaitQueue q;
  SimTime woke_at{};
  sim.spawn("consumer", [&](SimProcess& self) {
    const WaitQueue::WakeCharge charge = [] { return microseconds(75); };
    q.wait_charged(self, charge);
    woke_at = self.now();
  });
  sim.spawn("producer", [&](SimProcess& self) {
    self.delay(microseconds(25));
    q.notify_one();
  });
  sim.run();
  EXPECT_EQ(woke_at, microseconds(100));
  EXPECT_EQ(sim.sched_counters().handoffs, 3u)
      << "consumer start, producer start, consumer charged wake";
}

// The in-place delay fast path must not change timing, only handoffs.
TEST_P(BackendTest, CoalescedDelaysKeepExactTiming) {
  Simulator sim(1, GetParam());
  std::vector<std::int64_t> trace;
  sim.spawn("solo", [&](SimProcess& self) {
    for (int i = 0; i < 5; ++i) {
      self.delay(microseconds(10));  // nothing else runnable: coalesced
      trace.push_back(self.now().count());
    }
  });
  sim.run();
  EXPECT_EQ(trace, (std::vector<std::int64_t>{10'000, 20'000, 30'000,
                                              40'000, 50'000}));
  EXPECT_EQ(sim.sched_counters().coalesced_delays, 5u);
  EXPECT_EQ(sim.sched_counters().handoffs, 1u) << "only the initial start";
}

// One batch event fires its callbacks in order, as a single event.
TEST_P(BackendTest, BatchEventRunsCallbacksInOrderAsOneEvent) {
  Simulator sim(1, GetParam());
  std::vector<int> order;
  std::vector<EventFn> batch;
  for (int i = 0; i < 4; ++i) {
    batch.push_back([&order, i] { order.push_back(i); });
  }
  const EventId id = sim.schedule_batch_at(microseconds(5), std::move(batch));
  EXPECT_NE(id, kInvalidEvent);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(sim.events_executed(), 1u);
  EXPECT_EQ(sim.sched_counters().batched_callbacks, 3u);
}

// The two backends must produce bit-identical histories (the thread backend
// is the oracle for the fiber fast paths).
TEST(BackendEquivalence, FiberAndThreadTracesAreBitIdentical) {
  auto run_once = [](ExecutionBackend backend) {
    Simulator sim(99, backend);
    std::vector<std::int64_t> history;
    WaitQueue q;
    for (int i = 0; i < 4; ++i) {
      sim.spawn("p" + std::to_string(i), [&, i](SimProcess& self) {
        for (int j = 0; j < 20; ++j) {
          self.delay(
              SimTime{static_cast<std::int64_t>(self.rng().below(3000)) + 1});
          if (j % 3 == i % 3) {
            q.notify_one();
          } else if (j % 5 == 0) {
            (void)q.wait_until(self, self.now() + microseconds(2));
          }
          history.push_back(self.now().count() * 10 + i);
        }
      });
    }
    sim.run();
    return history;
  };
  EXPECT_EQ(run_once(ExecutionBackend::kFiber),
            run_once(ExecutionBackend::kThread));
}

// Determinism: two identical simulations produce identical event history.
TEST(Simulator, BitIdenticalReplay) {
  auto run_once = [] {
    Simulator sim(77);
    std::vector<std::int64_t> history;
    WaitQueue q;
    for (int i = 0; i < 4; ++i) {
      sim.spawn("p" + std::to_string(i), [&, i](SimProcess& self) {
        for (int j = 0; j < 10; ++j) {
          self.delay(SimTime{static_cast<std::int64_t>(self.rng().below(5000)) + 1});
          history.push_back(self.now().count() * 10 + i);
        }
      });
    }
    sim.run();
    return history;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace mcmpi::sim
