// Throughput-mode workload determinism.
//
// cluster/workload.hpp promises: the multi-tenant arrival streams are pure
// functions of (config, tenant) — independent of shard layout — and the
// resulting per-collective completion latencies are bit-identical across
// shard counts, across the serial/parallel drivers, and with payload
// pooling on or off (the pool recycles allocations; it must never move a
// virtual timestamp).
#include <gtest/gtest.h>

#include <vector>

#include "cluster/workload.hpp"
#include "common/bytes.hpp"

namespace mcmpi {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::WorkloadConfig;
using cluster::WorkloadItem;
using cluster::WorkloadResult;

WorkloadConfig small_workload() {
  WorkloadConfig config;
  config.tenants = 3;
  config.collectives_per_tenant = 10;
  config.mean_gap = microseconds_f(350.0);
  config.min_bytes = 16;
  config.max_bytes = 4096;
  config.seed = 42;
  return config;
}

WorkloadResult run(unsigned shards, sim::ShardDriver driver, bool pooled) {
  ClusterConfig config;
  config.num_procs = 8;
  config.num_segments = 4;
  config.sim_shards = shards;
  config.shard_driver = driver;
  config.payload_pool = pooled;
  config.network = cluster::NetworkType::kSwitch;
  config.seed = 9;
  config.trunk_latency = microseconds_f(100.0);
  config.hosts = cluster::make_uniform_hosts(config.num_procs);
  Cluster cluster(config);
  return cluster::run_workload(cluster, small_workload());
}

TEST(ThroughputTest, ScheduleIsPureFunctionOfSeedAndTenant) {
  const WorkloadConfig config = small_workload();
  const std::vector<WorkloadItem> a = tenant_schedule(config, 1, 3);
  const std::vector<WorkloadItem> b = tenant_schedule(config, 1, 3);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].issue_at, b[i].issue_at);
    EXPECT_EQ(a[i].op, b[i].op);
    EXPECT_EQ(a[i].bytes, b[i].bytes);
    EXPECT_EQ(a[i].root, b[i].root);
  }
  // Arrivals are strictly increasing and sizes respect the bounds.
  SimTime prev = kTimeZero;
  for (const WorkloadItem& item : a) {
    EXPECT_GT(item.issue_at, prev);
    prev = item.issue_at;
    if (item.op != cluster::WorkloadOp::kBarrier) {
      EXPECT_GE(item.bytes, config.min_bytes);
      EXPECT_LE(item.bytes, config.max_bytes);
    }
    EXPECT_GE(item.root, 0);
    EXPECT_LT(item.root, 3);
  }
  // Distinct tenants draw from distinct streams.
  const std::vector<WorkloadItem> other = tenant_schedule(config, 2, 3);
  bool differs = false;
  for (std::size_t i = 0; i < a.size() && i < other.size(); ++i) {
    differs = differs || a[i].issue_at != other[i].issue_at;
  }
  EXPECT_TRUE(differs);
}

TEST(ThroughputTest, LatenciesIdenticalAcrossShardCounts) {
  const WorkloadResult one = run(1, sim::ShardDriver::kParallel, true);
  const WorkloadResult two = run(2, sim::ShardDriver::kParallel, true);
  const WorkloadResult four = run(4, sim::ShardDriver::kParallel, true);
  ASSERT_FALSE(one.latencies_us.empty());
  EXPECT_EQ(one.latencies_us, two.latencies_us);
  EXPECT_EQ(one.latencies_us, four.latencies_us);
  EXPECT_EQ(one.collectives, 30u);
}

TEST(ThroughputTest, SerialAndParallelDriversBitIdentical) {
  const WorkloadResult serial = run(4, sim::ShardDriver::kSerial, true);
  const WorkloadResult parallel = run(4, sim::ShardDriver::kParallel, true);
  EXPECT_EQ(serial.latencies_us, parallel.latencies_us);
  EXPECT_EQ(serial.p50_us, parallel.p50_us);
  EXPECT_EQ(serial.p99_us, parallel.p99_us);
  EXPECT_EQ(serial.makespan_us, parallel.makespan_us);
}

TEST(ThroughputTest, PoolingKeepsTimingAndReducesAllocations) {
  const PayloadCounters before_pooled = payload_counters();
  const WorkloadResult pooled = run(4, sim::ShardDriver::kParallel, true);
  const PayloadCounters pooled_delta = payload_counters().since(before_pooled);

  const PayloadCounters before_plain = payload_counters();
  const WorkloadResult plain = run(4, sim::ShardDriver::kParallel, false);
  const PayloadCounters plain_delta = payload_counters().since(before_plain);

  // The pool must be timing-invisible...
  EXPECT_EQ(pooled.latencies_us, plain.latencies_us);
  // ...while recycling a large share of the payload allocations.
  EXPECT_LT(pooled_delta.buffer_allocs, plain_delta.buffer_allocs);
}

}  // namespace
}  // namespace mcmpi
