#!/usr/bin/env python3
"""Perf-trajectory gate: diff freshly emitted BENCH_*.json against committed
baselines.

Every bench binary dumps BENCH_<name>.json (op, ranks, bytes, simulated
median, host wall time, events, handoffs, payload alloc/copy counts).  This
script compares a fresh run against the baselines committed under
bench/baselines/ and fails on:

  * any simulated-median change        (the simulation is deterministic; a
                                        changed median is a semantics change,
                                        not a perf regression)
  * any payload alloc/copy regression  (the zero-copy pipeline is structural:
                                        counts may only go down)
  * any events/handoffs regression     (scheduler load is deterministic too)
  * > --wall-tolerance aggregate wall-time regression per bench file
                                       (wall time is noisy per point, so the
                                        gate is on the file-level sum)

Sharded-simulator records (the bench_shard_scaling sweep) carry a `shards`
field and two extra rules:

  * records differing only in `shards` (or shard driver) must agree on
    sim_time_us — the sharded run is bit-identical to the serial one,
    enforced per fresh run;
  * with --min-shard-speedup R, wall(min shards) / wall(max shards) >= R
    per point — but only when the fresh run's hw_threads covers the max
    shard count, so single-core CI hosts skip the claim instead of failing
    it (per-shard-count counters are still compared exactly).

Throughput-mode records (bench/throughput_mixed.cpp) additionally carry a
`driver` field plus p99/throughput figures, with three rules of their own:

  * p99_us and the collectives count are deterministic and compared
    exactly against the baseline, like sim_time_us;
  * with --min-driver-speedup R, the parallel driver's wall-clock
    coll_per_sec must be >= R x the serial driver's at the highest shard
    count — compared within the fresh run only (never against a baseline:
    wall throughput is host-dependent) and skipped when hw_threads does
    not cover the shard count;
  * records whose algo is "pooled" must show strictly fewer payload_allocs
    than the matching "no-pool" reference (fresh run only).

Segmented-pipeline records (bench/bench_jumbo_bcast.cpp) carry `window` and
`lanes` fields, with two deterministic sim-time rules (no hardware gating —
simulated medians do not depend on the host):

  * with --min-pipeline-speedup R, at each record family's largest payload
    the lockstep run (smallest window) must be >= R x slower than the
    pipelined run (largest window), per (op, algo, network, ranks) on the
    single-lane records (multi-lane runs already overlap via striping, so
    the window has little left to win there);
  * at window 1 and the largest payload, striping must strictly help:
    sim(max lanes) < sim(1 lane), per (op, algo, network, ranks).

Fault-injection records (bench/bench_loss_crossover.cpp) carry a `loss`
field plus the injected/recovery counters (all compared exactly) and two
deterministic sim-time rules:

  * with --min-loss-advantage R, nack-mcast must be within 1/R of
    ack-mcast at every single-segment point with >= 1% injected loss;
  * with --min-fec-advantage R, the best fec-mcast variant must be within
    1/R of nack-mcast at >= 5% loss on multi-segment (slow-trunk)
    topologies — the zero-round-trip in-window recovery claim.

Segmented-topology records (bench/bench_hier_scaling.cpp) carry a `segments`
field with one deterministic sim-time rule:

  * with --min-hier-speedup R, the hierarchical bcast (hier-mcast) must be
    >= R x faster than the flat multicast tree (mcast-binary) in simulated
    median at every point with >= 4 segments and >= 256 ranks — the
    paper-style crossover where the flat tree pays the slow trunks
    O(log N) times and the hierarchy pays each once.

Improvements are reported and do NOT fail; refresh the baselines in the same
PR that makes them (see bench/baselines/README.md).

Usage:
  tools/bench_diff.py --baseline bench/baselines --fresh <dir> [options]
"""

import argparse
import json
import os
import sys


def load_records(path):
    with open(path) as f:
        records = json.load(f)
    by_key = {}
    for r in records:
        # Algorithm sweeps emit several records per (op, ranks, bytes) point
        # — one per registry algorithm — so the algo field joins the key;
        # sharded-scaling sweeps likewise key by shard count.  Older benches
        # fold the algorithm into op and carry neither field.
        key = (r.get("op"), r.get("algo"), r.get("network"), r.get("ranks"),
               r.get("bytes"), r.get("shards"), r.get("driver"),
               r.get("window"), r.get("lanes"), r.get("loss"),
               r.get("segments"))
        # Last record wins for duplicate keys (benches append per point).
        by_key[key] = r
    return by_key


def fmt_key(key):
    (op, algo, network, ranks, nbytes, shards, driver, window, lanes, loss,
     segments) = key
    label = f"{op}/{algo}" if algo else op
    suffix = f", {shards} shards" if shards else ""
    if driver:
        suffix += f", {driver} driver"
    if window:
        suffix += f", window {window}, {lanes} lane(s)"
    if loss is not None:
        suffix += f", loss {loss}"
    if segments:
        suffix += f", {segments} segments"
    return f"{label} [{network}, {ranks} ranks, {nbytes} B{suffix}]"


def check_shard_records(name, fresh, min_speedup, failures):
    """Cross-(shards, driver) determinism + (hardware permitting) speedup."""
    groups = {}
    for key, r in fresh.items():
        if key[5]:  # shards field present and non-zero
            groups.setdefault(key[:5], {})[(key[5], key[6])] = r
    for point, by_config in sorted(groups.items()):
        if len(by_config) < 2:
            continue
        medians = {c: r["sim_time_us"] for c, r in by_config.items()}
        if len(set(medians.values())) != 1:
            failures.append(
                f"{name}: {point} simulated medians differ across shard "
                f"counts/drivers {medians} (sharded determinism break)")
        p99s = {c: r["p99_us"] for c, r in by_config.items() if "p99_us" in r}
        if len(set(p99s.values())) > 1:
            failures.append(
                f"{name}: {point} p99 latencies differ across shard "
                f"counts/drivers {p99s} (sharded determinism break)")
        if min_speedup <= 0:
            continue
        # Wall speedup across shard counts, legacy (driver-less) records
        # only: throughput records have their own driver-vs-driver gate.
        by_shards = {c[0]: r for c, r in by_config.items() if not c[1]}
        if len(by_shards) < 2:
            continue
        low, high = min(by_shards), max(by_shards)
        hw = by_shards[high].get("hw_threads", 0)
        if hw < high:
            print(f"bench_diff: {name} {point} speedup check skipped "
                  f"({hw} hw thread(s) < {high} shards)")
            continue
        wall_low = by_shards[low]["wall_time_ms"]
        wall_high = by_shards[high]["wall_time_ms"]
        if wall_high <= 0 or wall_low < wall_high * min_speedup:
            failures.append(
                f"{name}: {point} wall speedup at {high} shards is "
                f"{wall_low / wall_high if wall_high > 0 else 0:.2f}x "
                f"(< required {min_speedup:.2f}x; "
                f"{wall_low:.1f} -> {wall_high:.1f} ms)")
        else:
            print(f"bench_diff: {name} {point} {high}-shard speedup "
                  f"{wall_low / wall_high:.2f}x (>= {min_speedup:.2f}x)")


def check_driver_records(name, fresh, min_driver_speedup, failures):
    """Throughput-mode rules: parallel-vs-serial wall throughput and the
    pooled-allocation reduction, both within the fresh run only."""
    # Driver speedup: same (op, algo, network, ranks, bytes, shards), the
    # parallel driver against the serial one at the highest shard count.
    families = {}
    for key, r in fresh.items():
        if key[6]:  # driver field present
            families.setdefault(key[:5], {}).setdefault(key[5], {})[key[6]] = r
    for point, by_shards in sorted(families.items()):
        if min_driver_speedup <= 0 or not by_shards:
            break
        high = max(by_shards)
        drivers = by_shards[high]
        if "serial" not in drivers or "parallel" not in drivers:
            continue
        hw = drivers["parallel"].get("hw_threads", 0)
        if hw < high:
            print(f"bench_diff: {name} {point} driver speedup check "
                  f"skipped ({hw} hw thread(s) < {high} shards)")
            continue
        serial_cps = drivers["serial"].get("coll_per_sec", 0)
        parallel_cps = drivers["parallel"].get("coll_per_sec", 0)
        if serial_cps <= 0 or parallel_cps < serial_cps * min_driver_speedup:
            failures.append(
                f"{name}: {point} parallel driver throughput at {high} "
                f"shards is "
                f"{parallel_cps / serial_cps if serial_cps > 0 else 0:.2f}x "
                f"serial (< required {min_driver_speedup:.2f}x; "
                f"{serial_cps:.0f} -> {parallel_cps:.0f} coll/s)")
        else:
            print(f"bench_diff: {name} {point} parallel driver "
                  f"{parallel_cps / serial_cps:.2f}x serial throughput "
                  f"(>= {min_driver_speedup:.2f}x)")

    # Pool reduction: every "pooled" record must allocate strictly fewer
    # payload buffers than the matching "no-pool" reference.
    points = {}
    for key, r in fresh.items():
        if key[6] and key[1] in ("pooled", "no-pool"):
            group = (key[0], key[2], key[3], key[4])
            points.setdefault(group, {}).setdefault(key[1], []).append(r)
    for group, by_algo in sorted(points.items()):
        if "pooled" not in by_algo or "no-pool" not in by_algo:
            continue
        pooled_max = max(r["payload_allocs"] for r in by_algo["pooled"])
        plain_min = min(r["payload_allocs"] for r in by_algo["no-pool"])
        if pooled_max >= plain_min:
            failures.append(
                f"{name}: {group} pooled payload_allocs {pooled_max} not "
                f"below the no-pool reference {plain_min}")
        else:
            print(f"bench_diff: {name} {group} pooling cuts payload_allocs "
                  f"{plain_min} -> {pooled_max}")


def check_pipeline_records(name, fresh, min_pipeline_speedup, failures):
    """Sliding-window and striping claims over segmented-pipeline records.

    Both rules compare simulated medians within the fresh run, so they are
    deterministic and never hardware-gated."""
    if min_pipeline_speedup <= 0:
        return
    # Pipelining: per (op, algo, network, ranks) at the largest payload,
    # lockstep (min window) vs pipelined (max window).  Single-lane records
    # only: with striping the lanes already overlap ack latencies, so the
    # window has little left to win and the ratio claim belongs to lane 1.
    families = {}
    for key, r in fresh.items():
        if key[7] and key[8] == 1:  # window present, single lane
            family = (key[0], key[1], key[2], key[3])
            families.setdefault(family, {}).setdefault(key[4], {})[key[7]] = r
    for family, by_bytes in sorted(families.items()):
        top = max(by_bytes)
        by_window = by_bytes[top]
        if len(by_window) < 2:
            continue
        low, high = min(by_window), max(by_window)
        lockstep = by_window[low]["sim_time_us"]
        pipelined = by_window[high]["sim_time_us"]
        if pipelined <= 0 or lockstep < pipelined * min_pipeline_speedup:
            failures.append(
                f"{name}: {family} at {top} B: window-{high} pipeline is "
                f"{lockstep / pipelined if pipelined > 0 else 0:.2f}x over "
                f"window-{low} (< required {min_pipeline_speedup:.2f}x; "
                f"{lockstep:.1f} vs {pipelined:.1f} us)")
        else:
            print(f"bench_diff: {name} {family} at {top} B: window-{high} "
                  f"pipeline {lockstep / pipelined:.2f}x over window-{low} "
                  f"(>= {min_pipeline_speedup:.2f}x)")
    # Striping: per (op, algo, network, ranks) at window 1 and the largest
    # payload, more lanes must be strictly faster than one lane.
    lane_families = {}
    for key, r in fresh.items():
        if key[7] == 1 and key[8]:
            family = (key[0], key[1], key[2], key[3])
            lane_families.setdefault(family, {}).setdefault(key[4], {})[
                key[8]] = r
    for family, by_bytes in sorted(lane_families.items()):
        top = max(by_bytes)
        by_lanes = by_bytes[top]
        if len(by_lanes) < 2:
            continue
        low, high = min(by_lanes), max(by_lanes)
        single = by_lanes[low]["sim_time_us"]
        striped = by_lanes[high]["sim_time_us"]
        if striped >= single:
            failures.append(
                f"{name}: {family} at {top} B: {high} lanes ({striped:.1f} "
                f"us) not strictly faster than {low} lane(s) "
                f"({single:.1f} us) at window 1")
        else:
            print(f"bench_diff: {name} {family} at {top} B: {high} lanes "
                  f"{single / striped:.2f}x over {low} lane(s) at window 1")


def check_loss_records(name, fresh, min_loss_advantage, failures):
    """Loss-crossover claim over fault-injection records: at >= 1% injected
    link loss, the receiver-driven NACK protocol's simulated median must be
    no worse than 1/R of the sender-driven ACK protocol's.  Simulated
    medians only — deterministic, never hardware-gated."""
    if min_loss_advantage <= 0:
        return
    points = {}
    for key, r in fresh.items():
        if key[9] is None:
            continue
        loss_label = key[9]
        if not loss_label.endswith("%"):
            continue  # "0" and named profiles (e.g. "bursty") are not gated
        if float(loss_label[:-1]) / 100.0 < 0.01:
            continue
        if key[10]:
            # The ack-vs-nack claim is the paper's single-segment one; the
            # multi-segment (slow-trunk) sweep is gated by the FEC rule.
            continue
        group = (key[0], key[2], key[3], key[4], loss_label)
        points.setdefault(group, {})[key[1]] = r
    for group, by_algo in sorted(points.items()):
        if "ack-mcast" not in by_algo or "nack-mcast" not in by_algo:
            continue
        ack = by_algo["ack-mcast"]["sim_time_us"]
        nack = by_algo["nack-mcast"]["sim_time_us"]
        if nack <= 0 or ack < nack * min_loss_advantage:
            failures.append(
                f"{name}: {group} nack-mcast is only "
                f"{ack / nack if nack > 0 else 0:.2f}x over ack-mcast "
                f"(< required {min_loss_advantage:.2f}x; "
                f"{ack:.1f} vs {nack:.1f} us)")
        else:
            print(f"bench_diff: {name} {group} nack-mcast "
                  f"{ack / nack:.2f}x over ack-mcast "
                  f"(>= {min_loss_advantage:.2f}x)")


def check_fec_records(name, fresh, min_fec_advantage, failures):
    """FEC-crossover claim over fault-injection records: at >= 5% injected
    loss on a multi-segment (slow-trunk) topology, the best-configured
    FEC variant's simulated median must be no worse than 1/R of the NACK
    protocol's — zero-round-trip in-window recovery beats waiting out a
    NACK round trip on the trunk.  Simulated medians only — deterministic,
    never hardware-gated."""
    if min_fec_advantage <= 0:
        return
    points = {}
    for key, r in fresh.items():
        loss_label = key[9]
        if loss_label is None or not loss_label.endswith("%"):
            continue
        if float(loss_label[:-1]) / 100.0 < 0.05:
            continue
        if not key[10]:  # single-segment records are not gated
            continue
        group = (key[0], key[2], key[3], key[4], loss_label, key[10])
        points.setdefault(group, {})[key[1]] = r
    for group, by_algo in sorted(points.items()):
        fec_medians = {algo: r["sim_time_us"] for algo, r in by_algo.items()
                       if algo.startswith("fec-mcast")}
        if "nack-mcast" not in by_algo or not fec_medians:
            continue
        nack = by_algo["nack-mcast"]["sim_time_us"]
        fec_algo, fec = min(fec_medians.items(), key=lambda kv: kv[1])
        if fec <= 0 or nack < fec * min_fec_advantage:
            failures.append(
                f"{name}: {group} {fec_algo} is only "
                f"{nack / fec if fec > 0 else 0:.2f}x over nack-mcast "
                f"(< required {min_fec_advantage:.2f}x; "
                f"{nack:.1f} vs {fec:.1f} us)")
        else:
            print(f"bench_diff: {name} {group} {fec_algo} "
                  f"{nack / fec:.2f}x over nack-mcast "
                  f"(>= {min_fec_advantage:.2f}x)")


def check_hier_records(name, fresh, min_hier_speedup, failures):
    """Hierarchical-collective crossover claim over segmented-topology
    records: past the paper-style threshold (>= 4 segments and >= 256
    ranks) the hierarchical algorithm's simulated median must be >= R x
    faster than the flat multicast tree's at the same point.  Simulated
    medians only — deterministic, never hardware-gated."""
    if min_hier_speedup <= 0:
        return
    points = {}
    for key, r in fresh.items():
        if key[10]:  # segments field present and non-zero
            group = (key[0], key[2], key[3], key[4], key[10])
            points.setdefault(group, {})[key[1]] = r
    for group, by_algo in sorted(points.items()):
        op, network, ranks, nbytes, segments = group
        if segments < 4 or ranks < 256:
            continue
        if "mcast-binary" not in by_algo or "hier-mcast" not in by_algo:
            continue
        flat = by_algo["mcast-binary"]["sim_time_us"]
        hier = by_algo["hier-mcast"]["sim_time_us"]
        if hier <= 0 or flat < hier * min_hier_speedup:
            failures.append(
                f"{name}: {group} hier-mcast is only "
                f"{flat / hier if hier > 0 else 0:.2f}x over flat "
                f"mcast-binary (< required {min_hier_speedup:.2f}x; "
                f"{flat:.1f} vs {hier:.1f} us)")
        else:
            print(f"bench_diff: {name} {group} hier-mcast "
                  f"{flat / hier:.2f}x over flat mcast-binary "
                  f"(>= {min_hier_speedup:.2f}x)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="directory with committed BENCH_*.json baselines")
    parser.add_argument("--fresh", required=True,
                        help="directory with freshly emitted BENCH_*.json")
    parser.add_argument("--wall-tolerance", type=float, default=0.10,
                        help="allowed fractional aggregate wall-time growth "
                             "per bench file (default 0.10 = 10%%)")
    parser.add_argument("--require", action="append", default=[],
                        help="bench file name that must exist in the fresh "
                             "dir (e.g. BENCH_perf_bcast_64k.json); may be "
                             "repeated")
    parser.add_argument("--min-shard-speedup", type=float, default=0.0,
                        help="required wall-clock speedup of the highest "
                             "shard count over the lowest, per sharded "
                             "record group; checked only when the run's "
                             "hw_threads covers the shard count (0 = off)")
    parser.add_argument("--min-driver-speedup", type=float, default=0.0,
                        help="required wall-clock collectives/sec ratio of "
                             "the parallel shard driver over the serial one "
                             "at the highest shard count of each "
                             "throughput-record family; hw-gated like "
                             "--min-shard-speedup (0 = off)")
    parser.add_argument("--min-loss-advantage", type=float, default=0.0,
                        help="required simulated-median ratio of ack-mcast "
                             "over nack-mcast on fault-injection records at "
                             ">= 1%% injected loss (0 = off)")
    parser.add_argument("--min-fec-advantage", type=float, default=0.0,
                        help="required simulated-median ratio of nack-mcast "
                             "over the best fec-mcast variant on "
                             "fault-injection records at >= 5%% injected "
                             "loss behind a multi-segment trunk (0 = off)")
    parser.add_argument("--min-pipeline-speedup", type=float, default=0.0,
                        help="required simulated-median ratio of the "
                             "lockstep (smallest window) over the pipelined "
                             "(largest window) segmented run at each record "
                             "family's largest payload; also enforces that "
                             "striping strictly helps at window 1 (0 = off)")
    parser.add_argument("--min-hier-speedup", type=float, default=0.0,
                        help="required simulated-median ratio of the flat "
                             "multicast tree (mcast-binary) over the "
                             "hierarchical bcast (hier-mcast) on segmented "
                             "records at >= 4 segments and >= 256 ranks "
                             "(0 = off)")
    args = parser.parse_args()

    baseline_files = sorted(f for f in os.listdir(args.baseline)
                            if f.startswith("BENCH_") and f.endswith(".json"))
    if not baseline_files:
        print(f"bench_diff: no baselines under {args.baseline}", file=sys.stderr)
        return 2

    failures = []
    improvements = []
    compared_files = 0

    for name in args.require:
        if not os.path.exists(os.path.join(args.fresh, name)):
            failures.append(f"{name}: required fresh output missing")

    for name in baseline_files:
        fresh_path = os.path.join(args.fresh, name)
        if not os.path.exists(fresh_path):
            # Only the benches the CTest target runs emit fresh output;
            # other baselines are skipped (they gate full manual sweeps).
            continue
        compared_files += 1
        base = load_records(os.path.join(args.baseline, name))
        fresh = load_records(fresh_path)
        check_shard_records(name, fresh, args.min_shard_speedup, failures)
        check_driver_records(name, fresh, args.min_driver_speedup, failures)
        check_pipeline_records(name, fresh, args.min_pipeline_speedup,
                               failures)
        check_loss_records(name, fresh, args.min_loss_advantage, failures)
        check_fec_records(name, fresh, args.min_fec_advantage, failures)
        check_hier_records(name, fresh, args.min_hier_speedup, failures)

        base_wall = 0.0
        fresh_wall = 0.0
        for key, b in base.items():
            f = fresh.get(key)
            if f is None:
                failures.append(f"{name}: {fmt_key(key)} missing from fresh run")
                continue
            base_wall += b["wall_time_ms"]
            fresh_wall += f["wall_time_ms"]

            if f["sim_time_us"] != b["sim_time_us"]:
                failures.append(
                    f"{name}: {fmt_key(key)} simulated median changed "
                    f"{b['sim_time_us']} -> {f['sim_time_us']} us "
                    f"(determinism break)")
            # Deterministic throughput figures compare exactly, like the
            # simulated median (coll_per_sec and wall stay host-local).
            # Fault-injection schedules are deterministic by construction,
            # so the injected/recovery counters compare exactly too.
            for exact in ("p99_us", "collectives", "frames_dropped",
                          "frames_duplicated", "frames_reordered",
                          "nacks_sent", "nacks_suppressed", "retransmits",
                          "parity_sent", "parity_used", "fec_decodes",
                          "fec_fallbacks"):
                if exact in b and exact in f and f[exact] != b[exact]:
                    failures.append(
                        f"{name}: {fmt_key(key)} {exact} changed "
                        f"{b[exact]} -> {f[exact]} (determinism break)")
            for counter in ("payload_allocs", "payload_copies",
                            "events_scheduled", "handoffs",
                            "event_pool_misses"):
                if counter not in b or counter not in f:
                    continue
                if f[counter] > b[counter]:
                    failures.append(
                        f"{name}: {fmt_key(key)} {counter} regressed "
                        f"{b[counter]} -> {f[counter]}")
                elif f[counter] < b[counter]:
                    improvements.append(
                        f"{name}: {fmt_key(key)} {counter} improved "
                        f"{b[counter]} -> {f[counter]}")

        if base_wall > 0 and fresh_wall > base_wall * (1.0 + args.wall_tolerance):
            failures.append(
                f"{name}: aggregate wall time regressed "
                f"{base_wall:.1f} -> {fresh_wall:.1f} ms "
                f"(> {args.wall_tolerance:.0%} tolerance)")
        elif base_wall > 0:
            delta = (fresh_wall - base_wall) / base_wall
            print(f"bench_diff: {name} wall {base_wall:.1f} -> "
                  f"{fresh_wall:.1f} ms ({delta:+.1%})")

    if compared_files == 0:
        print("bench_diff: no fresh BENCH_*.json matched any baseline",
              file=sys.stderr)
        return 2
    for line in improvements:
        print(f"bench_diff: IMPROVED {line}")
    for line in failures:
        print(f"bench_diff: FAIL {line}", file=sys.stderr)
    if failures:
        return 1
    print(f"bench_diff: OK ({compared_files} bench file(s) within tolerance)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
